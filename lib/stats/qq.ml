type point = { theoretical : float; observed : float }

let plotting_positions n =
  let fn = float_of_int n in
  Array.init n (fun i ->
      Dist.Normal.quantile ((float_of_int (i + 1) -. 0.375) /. (fn +. 0.25)))

let points ?shift ?scale xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Qq.points: needs >= 2 samples";
  let sorted = Desc.sorted xs in
  let shift = match shift with Some s -> s | None -> 0.0 in
  let scale = match scale with Some s -> s | None -> 1.0 in
  if scale = 0.0 then invalid_arg "Qq.points: zero scale";
  let theo = plotting_positions n in
  Array.init n (fun i ->
      { theoretical = theo.(i); observed = (sorted.(i) -. shift) /. scale })

let correlation xs =
  let pts = points xs in
  let t = Array.map (fun p -> p.theoretical) pts in
  let o = Array.map (fun p -> p.observed) pts in
  let mt = Desc.mean t and mo = Desc.mean o in
  let num = ref 0.0 and st = ref 0.0 and so = ref 0.0 in
  Array.iteri
    (fun i _ ->
      let dt = t.(i) -. mt and dob = o.(i) -. mo in
      num := !num +. (dt *. dob);
      st := !st +. (dt *. dt);
      so := !so +. (dob *. dob))
    t;
  (* An all-equal sample has zero spread on the observed axis: the
     correlation is undefined, and the sample is certainly not a draw
     from any normal with positive scale — report 0 (no normality
     evidence) rather than NaN. *)
  if !st *. !so <= 0.0 then 0.0 else !num /. sqrt (!st *. !so)

let line xs =
  let q1 = Desc.quantile xs 0.25 and q3 = Desc.quantile xs 0.75 in
  let t1 = Dist.Normal.quantile 0.25 and t3 = Dist.Normal.quantile 0.75 in
  let slope = (q3 -. q1) /. (t3 -. t1) in
  let intercept = q1 -. (slope *. t1) in
  (slope, intercept)

let ascii_plot ?(width = 60) ?(height = 20) pts =
  if Array.length pts = 0 then invalid_arg "Qq.ascii_plot: no points";
  let xs = Array.map (fun p -> p.theoretical) pts in
  let ys = Array.map (fun p -> p.observed) pts in
  let xmin = Desc.min xs and xmax = Desc.max xs in
  let ymin = Stdlib.min (Desc.min ys) xmin and ymax = Stdlib.max (Desc.max ys) xmax in
  let grid = Array.make_matrix height width ' ' in
  let place x y ch =
    let xr = (x -. xmin) /. (xmax -. xmin +. 1e-12) in
    let yr = (y -. ymin) /. (ymax -. ymin +. 1e-12) in
    let col = Stdlib.min (width - 1) (int_of_float (xr *. float_of_int (width - 1))) in
    let row = height - 1 - Stdlib.min (height - 1) (int_of_float (yr *. float_of_int (height - 1))) in
    if grid.(row).(col) = ' ' || ch = 'o' then grid.(row).(col) <- ch
  in
  (* Reference diagonal y = x first so sample points overwrite it. *)
  for i = 0 to width * 2 do
    let x = xmin +. (float_of_int i /. float_of_int (width * 2) *. (xmax -. xmin)) in
    if x >= ymin && x <= ymax then place x x '.'
  done;
  Array.iter (fun p -> place p.theoretical p.observed 'o') pts;
  let buf = Buffer.create (height * (width + 1)) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf
