(** Differential fuzzing of the VM/optimizer stack (ROADMAP item 3,
    after "Testing the Unknown"): every case is a program sampled by
    {!Stz_workloads.Fuzz} from [(fuzz_seed, index)] and pushed through
    three oracles —

    {ul
    {- {b (a) pipeline equivalence}: O1/O2/O3 must compile without
       raising, every pipeline output must pass
       {!Stz_vm.Validate.check_program}, and every level must compute
       the same return value as O0;}
    {- {b (b) layout invariance}: under the full STABILIZER
       configuration the return value must not depend on the
       randomization seed — layout moves bytes, never results;}
    {- {b (c) counter sanity}: every completed run's hardware counters
       must satisfy the machine model's own invariants (all finite and
       non-negative, [cycles >= instructions],
       [mispredictions <= branches], [l3 <= l2 <= l1i + l1d]), and an
       O0 re-run must reproduce counters bit-identically.}}

    A failing case is auto-shrunk by a greedy delta-debugging minimizer
    (function removal, whole-function truncation, instruction ddmin)
    against a predicate that re-checks only the oracle that fired, and
    emitted as a parseable {!Stz_vm.Text} reproducer.

    The campaign driver runs cases crash-isolated through the
    {!Parallel} fork pool with watchdog hang-kill; worker death and
    hangs are censored into the ledger ({!Stz_store.Fuzzlog}), never
    fatal. The ledger and reproducer files are a pure function of
    [(fuzz_seed, count, rand_runs, plant)] — independent of [--jobs],
    and byte-identical across SIGKILL + [--resume]. *)

(** Verdict of one fuzzed case. *)
type outcome =
  | Clean of { result : int; cycles : int }
  | Trapped of { what : string }
      (** the (usually trap-seeded) classification run trapped; the
          case is censored and the oracles are skipped *)
  | Failed of {
      oracle : string;
      detail : string;
      result : int;  (** O0 return value, 0 if O0 itself was the failure *)
      repro_text : string;  (** shrunk reproducer, [Text] format *)
      repro_instrs : int;
      shrink_steps : int;
    }

(** Evaluate one case end to end (oracles + shrinking). Deterministic;
    honours {!Stz_vm.Opt.planted_bug}. [rand_runs] (default 2) is the
    number of randomization seeds for oracle (b); [shrink_budget]
    (default 2000) caps predicate evaluations during minimization. *)
val evaluate :
  ?rand_runs:int ->
  ?shrink_budget:int ->
  fuzz_seed:int64 ->
  index:int ->
  unit ->
  outcome

(** Total static instructions of a program — the size metric the
    shrinker minimizes. *)
val program_instrs : Stz_vm.Ir.program -> int

(** [shrink ~budget ~pred p0]: the greedy delta-debugging minimizer
    (function removal, whole-function truncation, call constantization,
    control-flow collapse, chunked instruction ddmin), exposed so other
    searchers — the layout sweep shrinks worst-offender programs
    against an η²-preserving predicate — reuse it. [budget] caps
    predicate evaluations; candidates are validated before [pred] ever
    runs them. Returns the smallest program still satisfying [pred]
    plus the number of accepted transformations. *)
val shrink :
  budget:int ->
  pred:(Stz_vm.Ir.program -> bool) ->
  Stz_vm.Ir.program ->
  Stz_vm.Ir.program * int

(** Campaign configuration for {!run_campaign}. *)
type config = {
  fuzz_seed : int64;
  count : int;
  jobs : int;
  out_dir : string;  (** created if missing *)
  resume : bool;  (** continue an interrupted ledger instead of truncating *)
  rand_runs : int;
  shrink_budget : int;
  plant : Stz_vm.Opt.planted option;  (** armed in workers via fork inheritance *)
  watchdog : float option;
      (** hang grace in seconds; [Some _] forces fork isolation even at
          [jobs = 1] (the default driver passes 30s) *)
  log : string -> unit;  (** progress lines; [ignore] for quiet *)
}

type summary = {
  total : int;
  clean : int;
  trapped : int;
  failed : int;
  crashed : int;
  hung : int;
  reproducers : string list;  (** file names relative to [out_dir] *)
}

(** Ledger file name inside [out_dir] (["fuzz.log"]). *)
val ledger_name : string

(** Reproducer file name for a failing index (["repro-%06d.szt"]). *)
val repro_name : int -> string

(** Run (or resume) a campaign. [Error] only for harness-level aborts:
    unusable output directory, ledger kind/meta mismatch. Case
    failures, worker crashes and hangs are data, not errors. *)
val run_campaign : config -> (summary, string) result

(** Fold a ledger's cases into a summary (used by [szc fuzz] for the
    exit code and by tests). *)
val summarize : Stz_store.Fuzzlog.case list -> summary
