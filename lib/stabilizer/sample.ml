module Fault = Stz_faults.Fault
module Injector = Stz_faults.Injector

type failure_kind =
  | Faulted of Fault.fault_class
  | Budget_exceeded
  | Invalid_result
  | Worker_lost
  | Worker_hung

type failure = {
  run : int;
  seed : int64;
  kind : failure_kind;
  at_censoring : Runtime.partial option;
}

type t = {
  times : float array;
  cycles : int array;
  results : Runtime.result array;
  failures : failure list;
  outcomes : (int64 * Outcome.run_outcome) array;
}

let failure_kind_to_string = function
  | Faulted c -> Fault.class_to_string c
  | Budget_exceeded -> "budget-exceeded"
  | Invalid_result -> "invalid-result"
  | Worker_lost -> "worker-lost"
  | Worker_hung -> "worker-hung"

let seeds ~base_seed ~runs =
  let g = Stz_prng.Splitmix.create base_seed in
  Array.init runs (fun _ -> Stz_prng.Splitmix.split g)

let run_one ?limits ?profile ?events ?profiled ~config ~seed p ~args =
  match profile with
  | None -> Outcome.run ?limits ?events ?profiled ~config ~seed p ~args
  | Some profile ->
      let base = Option.value limits ~default:Stz_vm.Interp.default_limits in
      let plan = Injector.plan ~profile ~limits:base ~seed () in
      Outcome.run ~limits:plan.Injector.limits
        ?machine_factory:plan.Injector.machine_factory
        ~env_wrap:plan.Injector.env_wrap ?events ?profiled ~config ~seed p ~args

let collect_outcomes ?(jobs = 1) ?limits ?profile ?events ?profiled ~config
    ~base_seed ~runs ~args p =
  if runs < 1 then invalid_arg "Sample.collect: runs must be >= 1";
  let seeds = seeds ~base_seed ~runs in
  let outcomes =
    Parallel.map ~jobs
      ~f:(fun i ->
        run_one ?limits ?profile ?events ?profiled ~config ~seed:seeds.(i) p
          ~args)
      runs
  in
  Array.mapi
    (fun i o ->
      ( seeds.(i),
        match o with
        | Parallel.Value outcome -> outcome
        | Parallel.Lost -> Outcome.Worker_lost
        | Parallel.Hung -> Outcome.Worker_hung ))
    outcomes

let of_outcomes outcomes =
  let completed = ref [] in
  let failures = ref [] in
  let censor i seed kind at_censoring =
    failures := { run = i; seed; kind; at_censoring } :: !failures
  in
  Array.iteri
    (fun i (seed, outcome) ->
      match outcome with
      | Outcome.Completed r -> completed := r :: !completed
      | Outcome.Trapped (fault, partial) -> censor i seed (Faulted fault) partial
      | Outcome.Budget_exceeded r ->
          (* No budget/reference gates at this layer (the supervisor
             sets them), but the variant stays exhaustive. *)
          censor i seed Budget_exceeded (Some (Runtime.partial_of_result r))
      | Outcome.Invalid_result r ->
          censor i seed Invalid_result (Some (Runtime.partial_of_result r))
      | Outcome.Worker_lost -> censor i seed Worker_lost None
      | Outcome.Worker_hung -> censor i seed Worker_hung None)
    outcomes;
  let results = Array.of_list (List.rev !completed) in
  {
    times = Array.map (fun r -> r.Runtime.virtual_seconds) results;
    cycles = Array.map (fun r -> r.Runtime.cycles) results;
    results;
    failures = List.rev !failures;
    outcomes;
  }

let collect ?jobs ?limits ?profile ?events ?profiled ~config ~base_seed ~runs
    ~args p =
  of_outcomes
    (collect_outcomes ?jobs ?limits ?profile ?events ?profiled ~config
       ~base_seed ~runs ~args p)

let times ?jobs ?limits ?profile ~config ~base_seed ~runs ~args p =
  (collect ?jobs ?limits ?profile ~config ~base_seed ~runs ~args p).times
