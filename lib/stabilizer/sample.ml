module Fault = Stz_faults.Fault
module Injector = Stz_faults.Injector

type failure = { run : int; seed : int64; fault : Fault.fault_class }

type t = {
  times : float array;
  cycles : int array;
  results : Runtime.result array;
  failures : failure list;
}

let seeds ~base_seed ~runs =
  let g = Stz_prng.Splitmix.create base_seed in
  Array.init runs (fun _ -> Stz_prng.Splitmix.split g)

let run_one ?limits ?profile ~config ~seed p ~args =
  match profile with
  | None -> Outcome.run ?limits ~config ~seed p ~args
  | Some profile ->
      let base = Option.value limits ~default:Stz_vm.Interp.default_limits in
      let plan = Injector.plan ~profile ~limits:base ~seed () in
      Outcome.run ~limits:plan.Injector.limits
        ?machine_factory:plan.Injector.machine_factory
        ~env_wrap:plan.Injector.env_wrap ~config ~seed p ~args

let collect_outcomes ?limits ?profile ~config ~base_seed ~runs ~args p =
  if runs < 1 then invalid_arg "Sample.collect: runs must be >= 1";
  Array.map
    (fun seed -> (seed, run_one ?limits ?profile ~config ~seed p ~args))
    (seeds ~base_seed ~runs)

let collect ?limits ?profile ~config ~base_seed ~runs ~args p =
  let outcomes = collect_outcomes ?limits ?profile ~config ~base_seed ~runs ~args p in
  let completed = ref [] in
  let failures = ref [] in
  Array.iteri
    (fun i (seed, outcome) ->
      match outcome with
      | Outcome.Completed r -> completed := r :: !completed
      | Outcome.Trapped fault -> failures := { run = i; seed; fault } :: !failures
      | Outcome.Budget_exceeded | Outcome.Invalid_result ->
          (* No budget/reference gates at this layer (the supervisor
             sets them), but a profile's poisoned runs still complete;
             keep the variant exhaustive. *)
          failures := { run = i; seed; fault = Fault.Unknown_trap } :: !failures)
    outcomes;
  let results = Array.of_list (List.rev !completed) in
  {
    times = Array.map (fun r -> r.Runtime.virtual_seconds) results;
    cycles = Array.map (fun r -> r.Runtime.cycles) results;
    results;
    failures = List.rev !failures;
  }

let times ?limits ?profile ~config ~base_seed ~runs ~args p =
  (collect ?limits ?profile ~config ~base_seed ~runs ~args p).times
