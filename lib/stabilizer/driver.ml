let compile ~opt p =
  let compiled = Stz_vm.Opt.apply opt p in
  Stz_vm.Validate.check_exn compiled;
  compiled

let build_and_run ?jobs ?limits ?profile ?events ?profiled ~config ~opt
    ~base_seed ~runs ~args p =
  Sample.collect ?jobs ?limits ?profile ?events ?profiled ~config ~base_seed
    ~runs ~args (compile ~opt p)

let arm_b_salt = 0x0B5EEDL

let compare_opt_levels ?alpha ?jobs ?limits ~config ~base_seed ~runs ~args la lb
    p =
  let a = build_and_run ?jobs ?limits ~config ~opt:la ~base_seed ~runs ~args p in
  let b =
    build_and_run ?jobs ?limits ~config ~opt:lb
      ~base_seed:(Int64.add base_seed arm_b_salt)
      ~runs ~args p
  in
  Experiment.compare_samples ?alpha a.Sample.times b.Sample.times

let campaign ?policy ?profile ?limits ?jobs ?checkpoint ?resume ?on_record
    ?telemetry ?monitor ?dispatch ~config ~opt ~base_seed ~runs ~args p =
  Supervisor.run_campaign ?policy ?profile ?limits ?jobs ?checkpoint ?resume
    ?on_record ?telemetry ?monitor ?dispatch ~config ~base_seed ~runs ~args
    (compile ~opt p)

let compare_campaigns ?alpha ?policy ?profile ?limits ?jobs ?telemetry_a
    ?telemetry_b ~min_n ~config ~base_seed ~runs ~args la lb p =
  let a =
    campaign ?policy ?profile ?limits ?jobs ?telemetry:telemetry_a ~config
      ~opt:la ~base_seed ~runs ~args p
  in
  let b =
    campaign ?policy ?profile ?limits ?jobs ?telemetry:telemetry_b ~config
      ~opt:lb
      ~base_seed:(Int64.add base_seed arm_b_salt)
      ~runs ~args p
  in
  (a, b, Supervisor.verdict ?alpha ~min_n a b)
