module H = Stz_machine.Hierarchy

type entry = {
  fid : int;
  name : string;
  calls : int;
  exclusive_cycles : int;
  counters : H.counters;
}

type t = {
  names : string array;
  calls : int array;
  counters : H.counters array;
  mutable stack : int list;  (** fids of live activations *)
  mutable mark : H.counters;  (** machine counters at the last attribution point *)
}

let create p =
  {
    names = Array.map (fun f -> f.Stz_vm.Ir.fname) p.Stz_vm.Ir.funcs;
    calls = Array.make (Array.length p.Stz_vm.Ir.funcs) 0;
    counters = Array.make (Array.length p.Stz_vm.Ir.funcs) H.counters_zero;
    stack = [];
    mark = H.counters_zero;
  }

let attribute t ~at =
  (match t.stack with
  | fid :: _ ->
      t.counters.(fid) <- H.counters_add t.counters.(fid) (H.counters_sub at t.mark)
  | [] -> ());
  t.mark <- at

let on_enter t ~fid ~at =
  attribute t ~at;
  t.calls.(fid) <- t.calls.(fid) + 1;
  t.stack <- fid :: t.stack

let on_leave t ~fid ~at =
  attribute t ~at;
  match t.stack with
  | top :: rest when top = fid -> t.stack <- rest
  | _ -> invalid_arg "Profiler.on_leave: mismatched exit"

let finish t ~at = attribute t ~at

let sort_entries entries =
  List.stable_sort (fun a b -> compare b.exclusive_cycles a.exclusive_cycles) entries

let hottest t =
  sort_entries
    (Array.to_list
       (Array.mapi
          (fun fid name ->
            let counters = t.counters.(fid) in
            {
              fid;
              name;
              calls = t.calls.(fid);
              exclusive_cycles = counters.H.cycles;
              counters;
            })
          t.names))

let total_cycles t =
  Array.fold_left (fun acc c -> acc + c.H.cycles) 0 t.counters

(* Sum per-function attributions across runs (keyed by fid; function
   tables are identical for every run of the same program). *)
let merge_entries profiles =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun entries ->
      List.iter
        (fun e ->
          match Hashtbl.find_opt tbl e.fid with
          | None -> Hashtbl.replace tbl e.fid e
          | Some acc ->
              Hashtbl.replace tbl e.fid
                {
                  acc with
                  calls = acc.calls + e.calls;
                  exclusive_cycles = acc.exclusive_cycles + e.exclusive_cycles;
                  counters = H.counters_add acc.counters e.counters;
                })
        entries)
    profiles;
  sort_entries (Hashtbl.fold (fun _ e acc -> e :: acc) tbl [])
