module Hierarchy = Stz_machine.Hierarchy
module Cost = Stz_machine.Cost
module Ir = Stz_vm.Ir
module Interp = Stz_vm.Interp
module Address_space = Stz_layout.Address_space
module Static_layout = Stz_layout.Static_layout
module Stack = Stz_layout.Stack
module Code_rand = Stz_layout.Code_rand
module Source = Stz_prng.Source
module Splitmix = Stz_prng.Splitmix
module Event = Stz_telemetry.Event
module Runlog = Stz_telemetry.Runlog

type result = {
  cycles : int;
  virtual_seconds : float;
  return_value : int;
  counters : Hierarchy.counters;
  relocations : int;
  epochs : int;
  adaptive_triggers : int;
  heap_stats : Stz_alloc.Allocator.stats;
  profile : Profiler.entry list option;
      (** hottest-first per-function attribution when profiling is on *)
  events : Event.t list;
      (** run-local telemetry (empty unless [events] was requested) *)
}

type partial = {
  p_cycles : int;
  p_counters : Hierarchy.counters;
  p_epochs : int;
  p_relocations : int;
  p_adaptive_triggers : int;
}

exception
  Trap of {
    trap : exn;
    partial : partial;
    events : Event.t list;
  }

let partial_of_result r =
  {
    p_cycles = r.cycles;
    p_counters = r.counters;
    p_epochs = r.epochs;
    p_relocations = r.relocations;
    p_adaptive_triggers = r.adaptive_triggers;
  }

let malloc_cycles = 30
let free_cycles = 15

let static_views p static =
  Array.map
    (fun f ->
      let offsets = Ir.block_offsets f in
      {
        Interp.block_addrs =
          Array.map (fun o -> static.Static_layout.code_addrs.(f.Ir.fid) + o) offsets;
        branch_flips = Array.make (Array.length f.Ir.blocks) false;
      })
    p.Ir.funcs

(* Pad tables are placed directly after the last global, matching the
   compiler pass emitting them as additional globals. *)
let globals_end space p =
  Array.fold_left
    (fun acc (g : Ir.global) -> acc + ((g.Ir.gsize + 15) land lnot 15))
    space.Address_space.globals_base p.Ir.globals

let run ?limits ?(profile = false) ?(events = false) ?machine_factory
    ?(env_wrap = Fun.id) ~config ~seed p ~args =
  let machine =
    match machine_factory with Some f -> f () | None -> Hierarchy.create ()
  in
  let profiler = if profile then Some (Profiler.create p) else None in
  let rlog = if events then Some (Runlog.create ()) else None in
  let seeds = Splitmix.create seed in
  let link_seed = Splitmix.split seeds in
  let heap_seed = Splitmix.split seeds in
  let code_seed = Splitmix.split seeds in
  let stack_seed = Splitmix.split seeds in
  let space =
    Address_space.with_env_bytes Address_space.default config.Config.env_bytes
  in
  let order =
    match config.Config.link_order with
    | Config.Declaration -> None
    | Config.Random_link ->
        Some (Static_layout.random_order ~source:(Source.xorshift ~seed:link_seed) p)
  in
  let static = Static_layout.place ?order space p in
  let heap_arena = Address_space.heap_arena space in
  let heap =
    if config.Config.heap then
      Stz_alloc.Factory.randomized ~n:config.Config.shuffle_n
        ~source:(Source.marsaglia ~seed:heap_seed)
        config.Config.base_allocator heap_arena
    else Stz_alloc.Factory.base config.Config.base_allocator heap_arena
  in
  let frame_sizes = Array.map (fun f -> f.Ir.frame_size) p.Ir.funcs in
  let stack =
    if config.Config.stack then
      Stack.randomized ~machine
        ~source:(Source.marsaglia ~seed:stack_seed)
        ~base:(Address_space.stack_base space)
        ~table_base:(globals_end space p) ~frame_sizes
    else
      Stack.plain ~machine ~base:(Address_space.stack_base space) ~frame_sizes
  in
  let code_rand =
    if config.Config.code then
      let code_heap =
        Stz_alloc.Factory.randomized ~n:config.Config.shuffle_n
          ~source:(Source.marsaglia ~seed:code_seed)
          Stz_alloc.Allocator.Segregated
          (Address_space.code_heap_arena space)
      in
      Some
        (Code_rand.create ~machine ~code_heap
           ~source:(Source.xorshift ~seed:code_seed)
           ~granularity:config.Config.granularity
           ~reloc_style:config.Config.reloc_style p)
    else None
  in
  let views = if config.Config.code then [||] else static_views p static in
  let epoch_start = ref 0 in
  let epochs = ref 1 in
  let adaptive_triggers = ref 0 in
  let penalties_at_epoch_start = ref 0 in
  let rerandomizing =
    config.Config.rerandomize && (config.Config.code || config.Config.stack)
  in
  (* Penalty events for the §8 adaptive trigger: an unlucky layout shows
     up as an elevated miss + misprediction rate. *)
  let penalties () =
    let c = Hierarchy.counters machine in
    c.Hierarchy.l1i_misses + c.Hierarchy.l1d_misses
    + c.Hierarchy.branch_mispredictions
  in
  let adaptive_fire () =
    if not config.Config.adaptive then false
    else begin
      let now = Hierarchy.cycles machine in
      let elapsed = now - !epoch_start in
      (* Only consider firing once the epoch has enough signal. *)
      elapsed >= config.Config.interval_cycles / 4
      && now > 0
      &&
      let epoch_rate =
        float_of_int (penalties () - !penalties_at_epoch_start)
        /. float_of_int (max 1 elapsed)
      in
      let run_rate = float_of_int (penalties ()) /. float_of_int now in
      epoch_rate > config.Config.adaptive_threshold *. run_rate
    end
  in
  let maybe_rerandomize () =
    if rerandomizing then begin
      let timer_fired =
        Hierarchy.cycles machine - !epoch_start >= config.Config.interval_cycles
      in
      let adaptive_fired = (not timer_fired) && adaptive_fire () in
      if timer_fired || adaptive_fired then begin
        epoch_start := Hierarchy.cycles machine;
        penalties_at_epoch_start := penalties ();
        incr epochs;
        if adaptive_fired then incr adaptive_triggers;
        (match rlog with
        | Some l ->
            Runlog.instant l ~cat:"runtime" "rerandomize"
              ~args:
                [
                  ("epoch", Stz_telemetry.Json.Int !epochs);
                  ( "trigger",
                    Stz_telemetry.Json.String
                      (if adaptive_fired then "adaptive" else "timer") );
                ]
              ~now:(Hierarchy.cycles machine)
        | None -> ());
        (match code_rand with Some cr -> Code_rand.rerandomize cr | None -> ());
        let rewritten = Stack.rerandomize stack in
        (* Refilling the pad tables streams over them once. *)
        Hierarchy.charge machine (rewritten / 8)
      end
    end
  in
  (* Attribution owner tracking: only when the factory handed us an
     armed machine (szc explain / layout sweep); campaigns on dark
     machines skip both branches entirely. *)
  let attrib_on = Hierarchy.attrib_armed machine in
  let owner_stack = ref [] in
  let enter_function ~fid =
    maybe_rerandomize ();
    (match profiler with
    | Some pr -> Profiler.on_enter pr ~fid ~at:(Hierarchy.counters machine)
    | None -> ());
    if attrib_on then begin
      owner_stack := fid :: !owner_stack;
      Hierarchy.set_attrib_owner machine fid
    end;
    match code_rand with
    | Some cr -> Code_rand.enter cr ~fid
    | None -> views.(fid)
  in
  let frame_pop ~fid =
    Stack.pop stack ~fid;
    (match profiler with
    | Some pr -> Profiler.on_leave pr ~fid ~at:(Hierarchy.counters machine)
    | None -> ());
    if attrib_on then begin
      (match !owner_stack with [] -> () | _ :: rest -> owner_stack := rest);
      Hierarchy.set_attrib_owner machine
        (match !owner_stack with [] -> -1 | caller :: _ -> caller)
    end;
    match code_rand with Some cr -> Code_rand.leave cr ~fid | None -> ()
  in
  let global_addr ~caller ~gid =
    (match code_rand with
    | Some cr -> (
        (* Indirect through the caller's relocation table (no
           indirection under the fixed-table ABI, §3.5). *)
        match Code_rand.global_entry_addr cr ~caller ~gid with
        | Some entry -> ignore (Hierarchy.data machine entry)
        | None -> ())
    | None -> ());
    static.Static_layout.global_addrs.(gid)
  in
  let call_prologue ~caller ~callee =
    Hierarchy.charge machine 2;
    match code_rand with
    | Some cr ->
        ignore (Hierarchy.data machine (Code_rand.call_entry_addr cr ~caller ~callee))
    | None -> ()
  in
  let malloc ~size =
    Hierarchy.charge machine malloc_cycles;
    let addr = heap.Stz_alloc.Allocator.malloc size in
    ignore (Hierarchy.data machine addr);
    addr
  in
  let free ~addr =
    Hierarchy.charge machine free_cycles;
    heap.Stz_alloc.Allocator.free addr
  in
  let env =
    {
      Interp.machine;
      enter_function;
      frame_push = (fun ~fid -> Stack.push stack ~fid);
      frame_pop;
      global_addr;
      malloc;
      free;
      call_prologue;
    }
  in
  (match rlog with
  | Some l -> Runlog.begin_span l ~cat:"runtime" "execute" ~now:0
  | None -> ());
  let relocations () =
    match code_rand with Some cr -> Code_rand.relocations cr | None -> 0
  in
  match Interp.run ?limits (env_wrap env) p ~args with
  | return_value ->
      let cycles = Hierarchy.cycles machine in
      (match profiler with
      | Some pr -> Profiler.finish pr ~at:(Hierarchy.counters machine)
      | None -> ());
      let run_events =
        match rlog with
        | None -> []
        | Some l ->
            Runlog.end_span l ~now:cycles;
            Runlog.events l
      in
      {
        cycles;
        virtual_seconds = float_of_int cycles /. 3.2e9;
        return_value;
        counters = Hierarchy.counters machine;
        relocations = relocations ();
        epochs = !epochs;
        adaptive_triggers = !adaptive_triggers;
        heap_stats = heap.Stz_alloc.Allocator.stats ();
        profile = Option.map Profiler.hottest profiler;
        events = run_events;
      }
  | exception ((Stack_overflow | Assert_failure _) as fatal) -> raise fatal
  | exception trap ->
      (* The run died mid-flight (fuel starvation, injected OOM, depth
         blowout, …). Don't lose what the machine measured up to the
         trap: wrap the exception together with the partial counters and
         a closed, well-formed event stream. *)
      let cycles = Hierarchy.cycles machine in
      let trap_events =
        match rlog with
        | None -> []
        | Some l ->
            Runlog.instant l ~cat:"runtime" "trap"
              ~args:[ ("exn", Stz_telemetry.Json.String (Printexc.to_string trap)) ]
              ~now:cycles;
            Runlog.close l ~now:cycles;
            Runlog.events l
      in
      let partial =
        {
          p_cycles = cycles;
          p_counters = Hierarchy.counters machine;
          p_epochs = !epochs;
          p_relocations = relocations ();
          p_adaptive_triggers = !adaptive_triggers;
        }
      in
      raise (Trap { trap; partial; events = trap_events })
