(** Bridge between finished campaigns and the cross-campaign
    regression history ({!Stz_store.Ledger}): builds one ledger entry
    per campaign, and decides — from ledger entries alone — whether the
    latest campaign regressed against its baseline, using effect-size
    confidence intervals (Kalibera & Jones: report effect sizes with
    CIs, not bare p-values).

    Everything here is deterministic: the entry is a pure function of
    the campaign records (so a SIGKILLed + resumed campaign appends a
    ledger record bit-identical to an uninterrupted one), and the
    regression decision is a pure function of two entries. *)

(** [fingerprint ~bench ~opt ~scale c]: the full configuration identity
    of a campaign — benchmark, optimization level, workload scale,
    randomization config and fault profile. Two campaigns with equal
    fingerprints measured the same thing; two with equal [bench] labels
    measure comparable workloads (e.g. the same benchmark at O1 vs
    O2). *)
val fingerprint :
  bench:string -> opt:Stz_vm.Opt.level -> scale:float -> Supervisor.campaign -> string

(** Build the ledger entry for a finished campaign. Moments are
    computed with streaming (Welford) estimators over completed-run
    times in run order — the same numbers the live monitor converges
    to. [verdict] records the monitor's final stopping verdict
    (defaults to ["-"] for unmonitored campaigns). *)
val entry_of_campaign :
  ?verdict:string ->
  label:string ->
  fingerprint:string ->
  Supervisor.campaign ->
  Stz_store.Ledger.entry

type decision =
  | No_regression  (** CI does not confirm a slowdown *)
  | Regression  (** latest is slower: CI excludes zero, d >= min_effect *)
  | Improvement  (** latest is faster, same evidence bar *)
  | Not_comparable of string  (** too little data to decide either way *)

type comparison = {
  baseline_seq : int;  (** ledger position of the baseline entry *)
  latest_seq : int;
  d : float;  (** Cohen's d, positive = latest slower *)
  ci_low : float;
  ci_high : float;
  confidence : float;  (** level of the CI, e.g. 0.95 *)
  ratio : float;  (** latest mean / baseline mean; 0 when baseline is 0 *)
  same_fingerprint : bool;
  decision : decision;
}

(** [compare_entries ~baseline ~latest] with their ledger sequence
    numbers. [min_n] (default 3) is the per-side completed-run floor
    below which the decision is {!Not_comparable}; [min_effect]
    (default 0.2, Cohen's "small") is the practical-significance floor;
    [confidence] (default 0.95) sizes the CI. *)
val compare_entries :
  ?confidence:float ->
  ?min_effect:float ->
  ?min_n:int ->
  baseline:int * Stz_store.Ledger.entry ->
  latest:int * Stz_store.Ledger.entry ->
  unit ->
  comparison

val describe : comparison -> string
