(** The push-button evaluation workflow of §2.4-2.5: run both versions
    under STABILIZER, check normality, then apply the matching test —
    Student's t-test when both samples are plausibly Gaussian, the
    Wilcoxon signed-rank test otherwise (exactly the paper's §6
    procedure) — and, across a whole suite, one-way within-subjects
    ANOVA. *)

type comparison = {
  mean_a : float;
  mean_b : float;
  speedup : float;  (** mean_a / mean_b: > 1 when b is faster *)
  normal_a : bool;  (** Shapiro-Wilk at alpha on sample a *)
  normal_b : bool;
  used_ttest : bool;  (** false = Wilcoxon fallback *)
  p_value : float;
  significant : bool;  (** p < alpha *)
  alpha : float;
  equal_variance : bool;
      (** Brown-Forsythe at alpha across the two samples; [false] means
          the spreads differ, so a mean-shift verdict (especially a
          t-test one) deserves the warning {!describe} attaches *)
  variance_p : float;  (** the Brown-Forsythe p-value *)
}

(** [compare_samples ?alpha a b]; requires >= 3 samples each. When the
    Wilcoxon fallback is needed and lengths match, the signed-rank test
    is used, else the rank-sum test. *)
val compare_samples : ?alpha:float -> float array -> float array -> comparison

(** Minimum-N-gated comparison: a campaign whose censored (trapped,
    budget-exceeded, invalid) runs leave fewer than [min_n] usable
    samples per side gets {!Insufficient}, never a verdict — a censored
    sample is a biased sample, so refusing is the sound answer.
    [min_n] is clamped to at least 3 ({!compare_samples}'s own floor). *)
type gated =
  | Verdict of comparison
  | Insufficient of { min_n : int; n_a : int; n_b : int }

val compare_samples_gated :
  ?alpha:float -> min_n:int -> float array -> float array -> gated

val describe_gated : gated -> string

(** Run two program versions under a configuration and compare their
    time samples. *)
val compare_programs :
  ?alpha:float ->
  ?limits:Stz_vm.Interp.limits ->
  config:Config.t ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Ir.program ->
  Stz_vm.Ir.program ->
  comparison

(** Suite-wide treatment evaluation: [suite_anova samples] where
    [samples.(i)] are the per-benchmark sample pairs (same benchmark,
    treatment A and B). Each benchmark contributes its mean under each
    treatment; one-way within-subjects ANOVA partitions out
    between-benchmark differences (§6.1). *)
val suite_anova : (float array * float array) array -> Stz_stats.Anova.result

(** Render a one-line verdict, e.g.
    ["speedup 1.042, t-test p=0.003 (significant)"] *)
val describe : comparison -> string
