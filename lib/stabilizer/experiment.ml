module Stats = Stz_stats

type comparison = {
  mean_a : float;
  mean_b : float;
  speedup : float;
  normal_a : bool;
  normal_b : bool;
  used_ttest : bool;
  p_value : float;
  significant : bool;
  alpha : float;
  equal_variance : bool;
  variance_p : float;
}

let compare_samples ?(alpha = 0.05) a b =
  if Array.length a < 3 || Array.length b < 3 then
    invalid_arg "Experiment.compare_samples: needs >= 3 samples each";
  let normal_a = Stats.Shapiro.normal ~alpha a in
  let normal_b = Stats.Shapiro.normal ~alpha b in
  let used_ttest = normal_a && normal_b in
  let p_value =
    if used_ttest then (Stats.Ttest.welch a b).Stats.Ttest.p_value
    else if Array.length a = Array.length b then
      (Stats.Wilcoxon.signed_rank a b).Stats.Wilcoxon.p_value
    else (Stats.Wilcoxon.rank_sum a b).Stats.Wilcoxon.p_value
  in
  let mean_a = Stats.Desc.mean a in
  let mean_b = Stats.Desc.mean b in
  (* Brown-Forsythe guards the verdict's fine print: Welch's correction
     tolerates unequal variances, but when the spreads differ the
     "speedup" is a shift in distributions, not a clean mean shift —
     the paper's Table 1 variance comparisons live on this test. *)
  let variance_p = (Stats.Levene.brown_forsythe [ a; b ]).Stats.Levene.p_value in
  {
    mean_a;
    mean_b;
    speedup = mean_a /. mean_b;
    normal_a;
    normal_b;
    used_ttest;
    p_value;
    significant = p_value < alpha;
    alpha;
    equal_variance = not (variance_p < alpha);
    variance_p;
  }

type gated =
  | Verdict of comparison
  | Insufficient of { min_n : int; n_a : int; n_b : int }

let compare_samples_gated ?alpha ~min_n a b =
  (* compare_samples itself needs >= 3 per side; the gate can only be
     stricter than that. *)
  let min_n = Stdlib.max 3 min_n in
  let n_a = Array.length a and n_b = Array.length b in
  if n_a < min_n || n_b < min_n then Insufficient { min_n; n_a; n_b }
  else Verdict (compare_samples ?alpha a b)

let compare_programs ?alpha ?limits ~config ~base_seed ~runs ~args pa pb =
  let a = Sample.times ?limits ~config ~base_seed ~runs ~args pa in
  let b =
    Sample.times ?limits ~config
      ~base_seed:(Int64.add base_seed 0x5EEDL)
      ~runs ~args pb
  in
  compare_samples ?alpha a b

let suite_anova samples =
  if Array.length samples < 2 then
    invalid_arg "Experiment.suite_anova: needs >= 2 benchmarks";
  let data =
    Array.map
      (fun (a, b) -> [| Stats.Desc.mean a; Stats.Desc.mean b |])
      samples
  in
  Stats.Anova.within_subjects data

let describe c =
  Printf.sprintf "speedup %.3f, %s p=%.4f (%s)%s" c.speedup
    (if c.used_ttest then "t-test" else "Wilcoxon")
    c.p_value
    (if c.significant then "significant" else "not significant")
    (if c.equal_variance then ""
     else
       Printf.sprintf
         "; warning: unequal variances (Brown-Forsythe p=%.4f)%s"
         c.variance_p
         (if c.used_ttest then
            " — Welch-corrected, but the mean comparison summarizes \
             distributions with different spreads"
          else ""))

let describe_gated = function
  | Verdict c -> describe c
  | Insufficient { min_n; n_a; n_b } ->
      Printf.sprintf
        "no verdict: %d/%d uncensored runs, need %d per side (censored \
         campaign — collect more runs)"
        n_a n_b min_n
