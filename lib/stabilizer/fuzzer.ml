(* Differential fuzzing of the VM/optimizer stack. One case = one
   program sampled by Stz_workloads.Fuzz from (fuzz_seed, index),
   pushed through three oracles (pipeline equivalence, layout
   invariance, counter sanity); a failing case is shrunk by greedy
   delta debugging against a predicate that re-checks only the oracle
   that fired. The campaign driver fans cases over the Parallel fork
   pool (crash isolation + watchdog hang-kill) and appends verdicts to
   the Fuzzlog container strictly in index order, so the ledger and
   reproducer bytes are independent of --jobs and resumable after a
   SIGKILL. *)

module Ir = Stz_vm.Ir
module Opt = Stz_vm.Opt
module Validate = Stz_vm.Validate
module Text = Stz_vm.Text
module Interp = Stz_vm.Interp
module F = Stz_workloads.Fuzz
module Fuzzlog = Stz_store.Fuzzlog

type outcome =
  | Clean of { result : int; cycles : int }
  | Trapped of { what : string }
  | Failed of {
      oracle : string;
      detail : string;
      result : int;
      repro_text : string;
      repro_instrs : int;
      shrink_steps : int;
    }

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let program_instrs p =
  Array.fold_left (fun acc f -> acc + Ir.func_instr_count f) 0 p.Ir.funcs

let trap_name = function
  | Interp.Fuel_exhausted -> "fuel-exhausted"
  | Interp.Call_depth_exceeded -> "call-depth-exceeded"
  | e -> Printexc.to_string e

let compile lvl p =
  match Opt.apply lvl p with
  | out -> Ok out
  | exception ((Stack_overflow | Out_of_memory | Assert_failure _) as e) ->
      raise e
  | exception e -> Error (Printexc.to_string e)

(* A run that cannot raise (for non-fatal traps): the Runtime already
   wraps every trap, we just turn it into a value. *)
let run_p ?limits ~config ~seed p ~args =
  match Runtime.run ?limits ~config ~seed p ~args with
  | r -> Ok r
  | exception Runtime.Trap { trap; _ } -> Error trap

(* Oracle (c): the machine model's own invariants. base_cycles is 1
   and every penalty is non-negative, so cycles >= instructions; L2 is
   accessed only on an L1 miss and L3 only on an L2 miss, so the miss
   counts are monotone down the hierarchy. *)
let counter_insanity (c : Stz_machine.Hierarchy.counters) =
  let neg =
    c.cycles < 0 || c.instructions < 0 || c.l1i_misses < 0
    || c.l1d_misses < 0 || c.l2_misses < 0 || c.l3_misses < 0
    || c.itlb_misses < 0 || c.dtlb_misses < 0 || c.branches < 0
    || c.branch_mispredictions < 0
  in
  if neg then Some "negative counter"
  else if c.instructions = 0 then Some "zero instructions on a completed run"
  else if c.cycles < c.instructions then
    Some (Printf.sprintf "cycles %d < instructions %d" c.cycles c.instructions)
  else if c.branch_mispredictions > c.branches then
    Some
      (Printf.sprintf "mispredictions %d > branches %d"
         c.branch_mispredictions c.branches)
  else if c.l2_misses > c.l1i_misses + c.l1d_misses then
    Some
      (Printf.sprintf "l2 misses %d > l1 misses %d" c.l2_misses
         (c.l1i_misses + c.l1d_misses))
  else if c.l3_misses > c.l2_misses then
    Some (Printf.sprintf "l3 misses %d > l2 misses %d" c.l3_misses c.l2_misses)
  else None

(* ------------------------------------------------------------------ *)
(* Shrinking: greedy delta debugging                                   *)
(* ------------------------------------------------------------------ *)

(* Remove one function: calls to it become [Mov (dst, Imm 1)] (a
   nonzero constant keeps downstream data flow alive more often than
   0 would), remaining fids renumber densely. *)
let remove_function p fid =
  if fid = p.Ir.entry then None
  else
    let remap f = if f < fid then f else f - 1 in
    let rewrite = function
      | Ir.Call { fn; args; dst } ->
          if fn = fid then Ir.Mov (dst, Ir.Imm 1)
          else Ir.Call { fn = remap fn; args; dst }
      | i -> i
    in
    let funcs =
      p.Ir.funcs |> Array.to_list
      |> List.filter_map (fun f ->
             if f.Ir.fid = fid then None
             else begin
               let f = Ir.copy_func f in
               Array.iter
                 (fun blk -> blk.Ir.instrs <- Array.map rewrite blk.Ir.instrs)
                 f.Ir.blocks;
               Some { f with Ir.fid = remap f.Ir.fid }
             end)
      |> Array.of_list
    in
    Some { p with Ir.funcs; entry = remap p.Ir.entry }

(* Gut a function to [ret 1]. The constant folder never tracks a call
   destination, so a call to the gutted function still feeds an
   unknown value to its users — which is what keeps optimizer bugs on
   non-constant operands reproducible at minimal size. *)
let truncate_function p fid =
  let funcs =
    Array.map
      (fun f ->
        let f = Ir.copy_func f in
        if f.Ir.fid = fid then
          f.Ir.blocks <- [| { Ir.instrs = [| Ir.Ret (Ir.Imm 1) |] } |];
        f)
      p.Ir.funcs
  in
  { p with Ir.funcs }

(* Replace one call with a small constant. [remove_function] rewrites
   every call site to a uniform [Imm 1], and when that particular
   value's divergence washes out downstream (masking [and]/[or]
   arithmetic collides the two sides), the whole removal is rejected
   and the callee's loops survive to the end. Trying a few different
   constants per site keeps the divergence alive far more often; once
   a function's last call is gone, pass 1 deletes its body. *)
let constantize_call_candidates p =
  let acc = ref [] in
  Array.iteri
    (fun fi f ->
      Array.iteri
        (fun bi blk ->
          Array.iteri
            (fun ii ins ->
              match ins with
              | Ir.Call { dst; _ } ->
                  List.iter
                    (fun k ->
                      let q = Ir.copy_program p in
                      q.Ir.funcs.(fi).Ir.blocks.(bi).Ir.instrs.(ii) <-
                        Ir.Mov (dst, Ir.Imm k);
                      acc := q :: !acc)
                    [ 3; 2; 17; 1 ]
              | _ -> ())
            blk.Ir.instrs)
        f.Ir.blocks)
    p.Ir.funcs;
  List.rev !acc

(* Control-flow reduction. Instruction ddmin never touches
   terminators, so a block holding only [Br]/[Brc] — an emptied loop
   skeleton — survives every other pass. These candidates collapse a
   conditional branch to one arm or thread away a forwarding block,
   then physically delete whatever became unreachable. *)

let retarget_block ~from ~target = function
  | Ir.Br t -> Ir.Br (if t = from then target else t)
  | Ir.Brc (v, a, b) ->
      Ir.Brc
        ( v,
          (if a = from then target else a),
          if b = from then target else b )
  | i -> i

(* Remove blocks unreachable from each function's block 0, renumbering
   branch targets. [None] when everything is reachable. *)
let drop_unreachable_blocks p =
  let changed = ref false in
  let funcs =
    Array.map
      (fun f ->
        let f = Ir.copy_func f in
        let n = Array.length f.Ir.blocks in
        let reach = Array.make n false in
        let rec go b =
          if b >= 0 && b < n && not reach.(b) then begin
            reach.(b) <- true;
            let instrs = f.Ir.blocks.(b).Ir.instrs in
            let m = Array.length instrs in
            if m > 0 then
              match instrs.(m - 1) with
              | Ir.Br t -> go t
              | Ir.Brc (_, a, b') ->
                  go a;
                  go b'
              | _ -> ()
          end
        in
        go 0;
        if Array.for_all Fun.id reach then f
        else begin
          changed := true;
          let map = Array.make n (-1) in
          let next = ref 0 in
          for b = 0 to n - 1 do
            if reach.(b) then begin
              map.(b) <- !next;
              incr next
            end
          done;
          let blocks =
            Array.to_list f.Ir.blocks
            |> List.filteri (fun b _ -> reach.(b))
            |> Array.of_list
          in
          Array.iter
            (fun blk ->
              blk.Ir.instrs <-
                Array.map
                  (function
                    | Ir.Br t -> Ir.Br map.(t)
                    | Ir.Brc (v, a, b') -> Ir.Brc (v, map.(a), map.(b'))
                    | i -> i)
                  blk.Ir.instrs)
            blocks;
          f.Ir.blocks <- blocks;
          f
        end)
      p.Ir.funcs
  in
  if !changed then Some { p with Ir.funcs } else None

let sweep_unreachable p =
  match drop_unreachable_blocks p with Some q -> q | None -> p

(* One candidate per conditional terminator per arm: [Brc _ a b]
   becomes [Br a] (resp. [Br b]), stranded blocks removed. *)
let collapse_brc_candidates p =
  let acc = ref [] in
  Array.iteri
    (fun fi f ->
      Array.iteri
        (fun bi blk ->
          let n = Array.length blk.Ir.instrs in
          if n > 0 then
            match blk.Ir.instrs.(n - 1) with
            | Ir.Brc (_, a, b) ->
                let mk t =
                  let q = Ir.copy_program p in
                  let blk' = q.Ir.funcs.(fi).Ir.blocks.(bi) in
                  blk'.Ir.instrs.(n - 1) <- Ir.Br t;
                  sweep_unreachable q
                in
                acc := mk b :: mk a :: !acc
            | _ -> ())
        f.Ir.blocks)
    p.Ir.funcs;
  List.rev !acc

(* One candidate per forwarding block (a non-entry block whose only
   instruction is [Br t]): redirect every reference to it at [t], then
   remove it as unreachable. *)
let thread_forward_candidates p =
  let acc = ref [] in
  Array.iteri
    (fun fi f ->
      Array.iteri
        (fun bi blk ->
          if bi > 0 && Array.length blk.Ir.instrs = 1 then
            match blk.Ir.instrs.(0) with
            | Ir.Br t when t <> bi ->
                let q = Ir.copy_program p in
                let f' = q.Ir.funcs.(fi) in
                Array.iter
                  (fun b ->
                    b.Ir.instrs <-
                      Array.map (retarget_block ~from:bi ~target:t) b.Ir.instrs)
                  f'.Ir.blocks;
                acc := sweep_unreachable q :: !acc
            | _ -> ())
        f.Ir.blocks)
    p.Ir.funcs;
  List.rev !acc

(* Every removable instruction position: (func idx, block idx, instr
   idx), excluding each block's terminator (always last). *)
let positions p =
  let acc = ref [] in
  Array.iteri
    (fun fi f ->
      Array.iteri
        (fun bi blk ->
          for ii = Array.length blk.Ir.instrs - 2 downto 0 do
            acc := (fi, bi, ii) :: !acc
          done)
        f.Ir.blocks)
    p.Ir.funcs;
  !acc

let drop_instrs p drop =
  let funcs =
    Array.mapi
      (fun fi f ->
        let f = Ir.copy_func f in
        Array.iteri
          (fun bi blk ->
            let n = Array.length blk.Ir.instrs in
            let kept = ref [] in
            Array.iteri
              (fun ii ins ->
                if ii = n - 1 || not (Hashtbl.mem drop (fi, bi, ii)) then
                  kept := ins :: !kept)
              blk.Ir.instrs;
            blk.Ir.instrs <- Array.of_list (List.rev !kept))
          f.Ir.blocks;
        f)
      p.Ir.funcs
  in
  { p with Ir.funcs }

(* Chunked greedy instruction removal (ddmin flavour): try dropping
   [chunk] consecutive removable positions; on success restart from
   the new program, on a full failed sweep halve the chunk. *)
let ddmin try_cand best0 =
  let best = ref best0 in
  let improved = ref false in
  let chunk = ref (max 1 (List.length (positions !best) / 2)) in
  let stop = ref false in
  while not !stop do
    let pos = Array.of_list (positions !best) in
    let n = Array.length pos in
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < n do
      let hi = min n (!i + !chunk) in
      let drop = Hashtbl.create 16 in
      for k = !i to hi - 1 do
        Hashtbl.replace drop pos.(k) ()
      done;
      (match try_cand (drop_instrs !best drop) with
      | Some b -> found := Some b
      | None -> ());
      i := hi
    done;
    match !found with
    | Some b ->
        best := b;
        improved := true
    | None -> if !chunk <= 1 then stop := true else chunk := !chunk / 2
  done;
  (!best, !improved)

(* [shrink ~budget ~pred p0]: minimize [p0] while [pred] (the oracle
   that fired) keeps holding. Budget counts predicate evaluations.
   Candidates must themselves validate — an invalid candidate is
   rejected before the predicate ever runs it. *)
let shrink ~budget ~pred p0 =
  let evals = ref 0 and steps = ref 0 in
  let budget_left () = !evals < budget in
  let try_cand cand =
    if not (budget_left ()) then None
    else begin
      incr evals;
      Parallel.beat ();
      if
        program_instrs cand < program_instrs p0 + 1
        && Validate.check_program cand = []
        && pred cand
      then begin
        incr steps;
        Some cand
      end
      else None
    end
  in
  let best = ref p0 in
  let improved = ref true in
  while !improved && budget_left () do
    improved := false;
    (* Pass 1: drop whole functions, highest fid first so lower fids
       keep their numbering across successful removals. *)
    for fid = Array.length !best.Ir.funcs - 1 downto 0 do
      if budget_left () then
        match remove_function !best fid with
        | Some cand -> (
            match try_cand cand with
            | Some b ->
                best := b;
                improved := true
            | None -> ())
        | None -> ()
    done;
    (* Pass 2: gut functions to [ret 1]. *)
    Array.iter
      (fun fid ->
        if budget_left () then
          let f = !best.Ir.funcs.(fid) in
          if Ir.func_instr_count f > 1 then
            match try_cand (truncate_function !best f.Ir.fid) with
            | Some b ->
                best := b;
                improved := true
            | None -> ())
      (Array.init (Array.length !best.Ir.funcs) Fun.id);
    (* Pass 3: constantize calls, one site at a time. *)
    let cc_improved = ref true in
    while !cc_improved && budget_left () do
      cc_improved := false;
      List.iter
        (fun cand ->
          if budget_left () && not !cc_improved then
            match try_cand cand with
            | Some b ->
                best := b;
                improved := true;
                cc_improved := true
            | None -> ())
        (constantize_call_candidates !best)
    done;
    (* Pass 4: control-flow reduction — collapse conditional branches
       to one arm and thread away forwarding blocks (dropping whatever
       becomes unreachable). A [Brc -> Br] collapse may keep the count
       flat, but it converts loop skeletons into unreachable blocks
       the same candidate then deletes; the pass terminates because
       each acceptance strictly reduces conditionals or blocks. *)
    let cf_improved = ref true in
    while !cf_improved && budget_left () do
      cf_improved := false;
      let cands =
        collapse_brc_candidates !best @ thread_forward_candidates !best
      in
      List.iter
        (fun cand ->
          if budget_left () && not !cf_improved then
            match try_cand cand with
            | Some b ->
                best := b;
                improved := true;
                cf_improved := true
            | None -> ())
        cands
    done;
    (* Pass 5: instruction-level ddmin. *)
    let b, ch = ddmin try_cand !best in
    best := b;
    if ch then improved := true
  done;
  (!best, !steps)

(* ------------------------------------------------------------------ *)
(* Case evaluation: the three oracles                                  *)
(* ------------------------------------------------------------------ *)

(* Which oracle fired, with just enough context to re-check it on a
   shrink candidate without re-running the other oracles. *)
type probe =
  | P_compile of Opt.level  (** pipeline raises or output fails validation *)
  | P_determinism  (** two identical O0 runs disagree *)
  | P_divergence of Opt.level  (** level's result differs from O0 (or traps) *)
  | P_seed_variance of Opt.level * int64  (** result moved under a layout seed *)
  | P_counter of Opt.level * Config.t * int64  (** insane counters on that run *)

let levels = [ Opt.O1; Opt.O2; Opt.O3 ]

let evaluate ?(rand_runs = 2) ?(shrink_budget = 2000) ~fuzz_seed ~index () =
  let plan = F.plan ~fuzz_seed ~index in
  let args = F.args plan in
  let p = F.build plan in
  let seed = plan.F.case_seed in
  (* First failure wins: evaluation stops at the first oracle
     violation and shrinks against exactly that violation. *)
  let exception Fire of probe * string * string * int in
  let fire probe oracle detail result =
    raise (Fire (probe, oracle, detail, result))
  in
  let sanity probe counters result =
    match counter_insanity counters with
    | None -> ()
    | Some what -> fire probe "counter-sanity" what result
  in
  let finish_failed (probe, oracle, detail, result) =
    (* Shrink-run fuel: generous enough that the original program (and
       its instrumented STABILIZER runs) still completes, tight enough
       that a shrink edit creating a runaway loop self-rejects fast. *)
    let shrink_limits = ref Interp.default_limits in
    let pred cand =
      let run ?(config = Config.baseline) ?(rseed = seed) prog =
        run_p ~limits:!shrink_limits ~config ~seed:rseed prog ~args
      in
      match probe with
      | P_compile lvl -> (
          match compile lvl cand with
          | Error _ -> true
          | Ok out -> Validate.check_program out <> [])
      | P_determinism -> (
          match compile Opt.O0 cand with
          | Error _ -> false
          | Ok o0 -> (
              match (run o0, run o0) with
              | Ok a, Ok b ->
                  a.Runtime.return_value <> b.Runtime.return_value
                  || a.Runtime.counters <> b.Runtime.counters
              | _ -> false))
      | P_divergence lvl -> (
          match (compile Opt.O0 cand, compile lvl cand) with
          | Ok o0, Ok ol -> (
              match run o0 with
              | Error _ -> false
              | Ok r0 -> (
                  match run ol with
                  | Error _ -> true
                  | Ok r -> r.Runtime.return_value <> r0.Runtime.return_value))
          | _ -> false)
      | P_seed_variance (lvl, s) -> (
          match (compile Opt.O0 cand, compile lvl cand) with
          | Ok o0, Ok ol -> (
              match run o0 with
              | Error _ -> false
              | Ok r0 -> (
                  match run ~config:Config.stabilizer ~rseed:s ol with
                  | Error _ -> true
                  | Ok r -> r.Runtime.return_value <> r0.Runtime.return_value))
          | _ -> false)
      | P_counter (lvl, config, s) -> (
          match compile lvl cand with
          | Error _ -> false
          | Ok ol -> (
              match run ~config ~rseed:s ol with
              | Error _ -> false
              | Ok r -> counter_insanity r.Runtime.counters <> None))
    in
    let pred cand =
      match pred cand with
      | b -> b
      | exception ((Stack_overflow | Out_of_memory | Assert_failure _) as e)
        ->
          raise e
      | exception _ -> false
    in
    (* Size the fuel to the original failing run when we have one. *)
    (match run_p ~config:Config.baseline ~seed p ~args with
    | Ok r0 ->
        shrink_limits :=
          Interp.limits
            ~max_instructions:
              (max 1_000_000 (4 * r0.Runtime.counters.instructions))
            ()
    | Error _ -> ());
    let shrunk, shrink_steps = shrink ~budget:shrink_budget ~pred p in
    let repro_instrs = program_instrs shrunk in
    let header =
      String.concat "\n"
        [
          "# szc fuzz reproducer";
          Printf.sprintf "# fuzz_seed=%Ld index=%d case_seed=%Ld" fuzz_seed
            index seed;
          Printf.sprintf "# oracle=%s" oracle;
          Printf.sprintf "# detail=%s" detail;
          Printf.sprintf "# plan: %s" (F.describe plan);
          Printf.sprintf "# instructions=%d (shrunk from %d in %d steps)"
            repro_instrs (program_instrs p) shrink_steps;
          "";
        ]
    in
    Failed
      {
        oracle;
        detail;
        result;
        repro_text = header ^ Text.to_string shrunk;
        repro_instrs;
        shrink_steps;
      }
  in
  match
    match compile Opt.O0 p with
    | Error msg -> fire (P_compile Opt.O0) "compile" ("O0: " ^ msg) 0
    | Ok o0 -> (
        (* Classification run: the only run under the plan's (possibly
           deliberately tight) limits. A trap here censors the case. *)
        match run_p ~limits:(F.limits plan) ~config:Config.baseline ~seed o0 ~args with
        | Error trap -> Trapped { what = trap_name trap }
        | Ok r0 ->
            let result0 = r0.Runtime.return_value in
            sanity (P_counter (Opt.O0, Config.baseline, seed)) r0.Runtime.counters
              result0;
            (* O0 determinism: bit-identical counters on a re-run. *)
            (match
               run_p ~limits:(F.limits plan) ~config:Config.baseline ~seed o0
                 ~args
             with
            | Error trap ->
                fire P_determinism "determinism"
                  ("O0 re-run trapped: " ^ trap_name trap)
                  result0
            | Ok r0' ->
                if
                  r0'.Runtime.return_value <> result0
                  || r0'.Runtime.counters <> r0.Runtime.counters
                then
                  fire P_determinism "determinism"
                    "O0 re-run disagrees (result or counters)" result0);
            (* Oracle (a): pipeline equivalence at every level. *)
            List.iter
              (fun lvl ->
                let name = Opt.level_to_string lvl in
                match compile lvl p with
                | Error msg ->
                    fire (P_compile lvl) "compile" (name ^ ": " ^ msg) result0
                | Ok ol -> (
                    (match Validate.check_program ol with
                    | [] -> ()
                    | { Validate.where; what } :: _ ->
                        fire (P_compile lvl) "validate"
                          (Printf.sprintf "%s: %s: %s" name where what)
                          result0);
                    match run_p ~config:Config.baseline ~seed ol ~args with
                    | Error trap ->
                        fire (P_divergence lvl) "divergence"
                          (Printf.sprintf "%s trapped (%s), O0 completed" name
                             (trap_name trap))
                          result0
                    | Ok r ->
                        if r.Runtime.return_value <> result0 then
                          fire (P_divergence lvl) "divergence"
                            (Printf.sprintf "%s returned %d, O0 returned %d"
                               name r.Runtime.return_value result0)
                            result0;
                        sanity
                          (P_counter (lvl, Config.baseline, seed))
                          r.Runtime.counters result0))
              levels;
            (* Oracle (b): the return value must not move under layout/
               heap randomization, at O0 and at O3. *)
            let o3 =
              match compile Opt.O3 p with Ok o -> o | Error _ -> assert false
            in
            let sm = Stz_prng.Splitmix.create seed in
            for k = 1 to rand_runs do
              let s = Stz_prng.Splitmix.split sm in
              List.iter
                (fun (lvl, prog) ->
                  let name = Opt.level_to_string lvl in
                  match
                    run_p ~config:Config.stabilizer ~seed:s prog ~args
                  with
                  | Error trap ->
                      fire
                        (P_seed_variance (lvl, s))
                        "seed-variance"
                        (Printf.sprintf
                           "%s trapped (%s) under randomization seed %d/%Ld"
                           name (trap_name trap) k s)
                        result0
                  | Ok r ->
                      if r.Runtime.return_value <> result0 then
                        fire
                          (P_seed_variance (lvl, s))
                          "seed-variance"
                          (Printf.sprintf
                             "%s returned %d under randomization seed %d/%Ld, \
                              baseline returned %d"
                             name r.Runtime.return_value k s result0)
                          result0;
                      sanity
                        (P_counter (lvl, Config.stabilizer, s))
                        r.Runtime.counters result0)
                [ (Opt.O0, o0); (Opt.O3, o3) ]
            done;
            Clean { result = result0; cycles = r0.Runtime.cycles })
  with
  | outcome -> outcome
  | exception Fire (probe, oracle, detail, result) ->
      finish_failed (probe, oracle, detail, result)

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

type config = {
  fuzz_seed : int64;
  count : int;
  jobs : int;
  out_dir : string;
  resume : bool;
  rand_runs : int;
  shrink_budget : int;
  plant : Opt.planted option;
  watchdog : float option;
  log : string -> unit;
}

type summary = {
  total : int;
  clean : int;
  trapped : int;
  failed : int;
  crashed : int;
  hung : int;
  reproducers : string list;
}

let ledger_name = "fuzz.log"
let repro_name index = Printf.sprintf "repro-%06d.szt" index

let plant_to_string = function
  | None -> "none"
  | Some Opt.Shift_clamp -> "shift-clamp"

let summarize cases =
  let z =
    {
      total = 0;
      clean = 0;
      trapped = 0;
      failed = 0;
      crashed = 0;
      hung = 0;
      reproducers = [];
    }
  in
  let s =
    List.fold_left
      (fun s (c : Fuzzlog.case) ->
        let s = { s with total = s.total + 1 } in
        match c.Fuzzlog.verdict with
        | Fuzzlog.Clean -> { s with clean = s.clean + 1 }
        | Fuzzlog.Trapped -> { s with trapped = s.trapped + 1 }
        | Fuzzlog.Fail ->
            {
              s with
              failed = s.failed + 1;
              reproducers = c.Fuzzlog.repro :: s.reproducers;
            }
        | Fuzzlog.Crashed -> { s with crashed = s.crashed + 1 }
        | Fuzzlog.Hung -> { s with hung = s.hung + 1 })
      z cases
  in
  { s with reproducers = List.rev s.reproducers }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let blank_case index case_seed verdict detail =
  {
    Fuzzlog.index;
    case_seed;
    verdict;
    oracle = "";
    detail;
    repro = "";
    repro_instrs = 0;
    shrink_steps = 0;
    result = 0;
    cycles = 0;
  }

let run_campaign cfg =
  let ( let* ) = Result.bind in
  let* () =
    match mkdir_p cfg.out_dir with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot create %s: %s" cfg.out_dir
             (Unix.error_message e))
  in
  (* Armed before the pool forks so workers inherit it; restored on
     every exit path so a library caller never leaks an armed bug into
     later work. *)
  let saved_plant = !Opt.planted_bug in
  Opt.planted_bug := cfg.plant;
  Fun.protect ~finally:(fun () -> Opt.planted_bug := saved_plant) @@ fun () ->
  let meta =
    {
      Fuzzlog.version = 1;
      fuzz_seed = cfg.fuzz_seed;
      count = cfg.count;
      rand_runs = cfg.rand_runs;
      plant = plant_to_string cfg.plant;
    }
  in
  let path = Filename.concat cfg.out_dir ledger_name in
  let* lg, existing =
    if cfg.resume then Stz_store.Fuzzlog.resume ~path meta
    else Result.map (fun t -> (t, [])) (Stz_store.Fuzzlog.create ~path meta)
  in
  let start = List.length existing in
  let remaining = max 0 (cfg.count - start) in
  if cfg.resume && start > 0 then
    cfg.log
      (Printf.sprintf "resuming: %d/%d cases already in the ledger" start
         cfg.count);
  (* Worker body: returns plain data (the ledger record plus the
     reproducer bytes) so it marshals over the pool pipe. *)
  let eval index =
    let plan = F.plan ~fuzz_seed:cfg.fuzz_seed ~index in
    let cs = plan.F.case_seed in
    match
      evaluate ~rand_runs:cfg.rand_runs ~shrink_budget:cfg.shrink_budget
        ~fuzz_seed:cfg.fuzz_seed ~index ()
    with
    | Clean { result; cycles } ->
        ( {
            (blank_case index cs Fuzzlog.Clean "") with
            Fuzzlog.result;
            cycles;
          },
          None )
    | Trapped { what } -> (blank_case index cs Fuzzlog.Trapped what, None)
    | Failed { oracle; detail; result; repro_text; repro_instrs; shrink_steps }
      ->
        let name = repro_name index in
        ( {
            (blank_case index cs Fuzzlog.Fail detail) with
            Fuzzlog.oracle;
            repro = name;
            repro_instrs;
            shrink_steps;
            result;
          },
          Some (name, repro_text) )
  in
  let new_cases = ref [] in
  if remaining > 0 then begin
    (* Results arrive in completion order; buffer and flush in index
       order so the ledger bytes never depend on --jobs, and so a
       SIGKILL always leaves a contiguous (resumable) prefix. The
       reproducer file is written before its ledger record: a record
       therefore never references a missing file. *)
    let pending = Array.make remaining None in
    let next = ref 0 in
    let flush () =
      while
        !next < remaining
        &&
        match pending.(!next) with
        | Some _ -> true
        | None -> false
      do
        (match pending.(!next) with
        | None -> assert false
        | Some ((case : Fuzzlog.case), repro) ->
            (match repro with
            | Some (name, text) ->
                Stz_store.Artifact.write_with_sum
                  (Filename.concat cfg.out_dir name)
                  text
            | None -> ());
            Stz_store.Fuzzlog.append lg case;
            new_cases := case :: !new_cases;
            (match case.Fuzzlog.verdict with
            | Fuzzlog.Fail ->
                cfg.log
                  (Printf.sprintf
                     "FAIL case %d (%s): %s -> %s [%d instrs, %d shrink steps]"
                     case.Fuzzlog.index case.Fuzzlog.oracle case.Fuzzlog.detail
                     case.Fuzzlog.repro case.Fuzzlog.repro_instrs
                     case.Fuzzlog.shrink_steps)
            | Fuzzlog.Crashed | Fuzzlog.Hung ->
                cfg.log
                  (Printf.sprintf "censored case %d: %s" case.Fuzzlog.index
                     case.Fuzzlog.detail)
            | _ -> ());
            if
              (case.Fuzzlog.index + 1) mod 100 = 0
              || case.Fuzzlog.index + 1 = cfg.count
            then
              cfg.log
                (Printf.sprintf "fuzzed %d/%d" (case.Fuzzlog.index + 1)
                   cfg.count));
        incr next
      done
    in
    let on_result i r =
      let index = start + i in
      let v =
        match r with
        | Parallel.Value v -> v
        | Parallel.Lost ->
            let plan = F.plan ~fuzz_seed:cfg.fuzz_seed ~index in
            ( blank_case index plan.F.case_seed Fuzzlog.Crashed
                "worker died mid-case",
              None )
        | Parallel.Hung ->
            let plan = F.plan ~fuzz_seed:cfg.fuzz_seed ~index in
            ( blank_case index plan.F.case_seed Fuzzlog.Hung
                "watchdog killed a hung worker",
              None )
      in
      pending.(i) <- Some v;
      flush ()
    in
    ignore
      (Parallel.map ~on_result ?watchdog:cfg.watchdog ~jobs:cfg.jobs
         ~f:(fun i -> eval (start + i))
         remaining);
    flush ()
  end;
  Stz_store.Fuzzlog.close lg;
  Ok (summarize (existing @ List.rev !new_cases))
