(** The szc-style driver (paper §3.1, Figure 2): "compile" a program at
    an optimization level and run it under a STABILIZER configuration —
    the equivalent of substituting szc for the default compiler and
    enabling randomizations with flags. *)

(** [compile ~opt p] applies the optimization pipeline and validates
    the result. *)
val compile : opt:Stz_vm.Opt.level -> Stz_vm.Ir.program -> Stz_vm.Ir.program

(** [build_and_run ~config ~opt ~base_seed ~runs ~args p] compiles then
    collects [runs] timing samples. Runs that trap are censored into
    [Sample.failures] instead of aborting the loop; [profile] injects
    faults via {!Stz_faults.Injector}; [jobs] fans the runs out over a
    {!Parallel} fork pool with a deterministic in-run-order merge. *)
val build_and_run :
  ?jobs:int ->
  ?limits:Stz_vm.Interp.limits ->
  ?profile:Stz_faults.Fault.profile ->
  ?events:bool ->
  ?profiled:bool ->
  config:Config.t ->
  opt:Stz_vm.Opt.level ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Ir.program ->
  Sample.t

(** Compile then run a supervised campaign (retry, quarantine, budgets,
    checkpoint/resume) — see {!Supervisor.run_campaign}. *)
val campaign :
  ?policy:Supervisor.policy ->
  ?profile:Stz_faults.Fault.profile ->
  ?limits:Stz_vm.Interp.limits ->
  ?jobs:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?on_record:(Supervisor.record -> unit) ->
  ?telemetry:Stz_telemetry.Trace.t ->
  ?monitor:Stz_monitor.Monitor.t ->
  ?dispatch:Parallel.dispatcher ->
  config:Config.t ->
  opt:Stz_vm.Opt.level ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Ir.program ->
  Supervisor.campaign

(** Supervised two-arm comparison of optimization levels: both arms run
    as campaigns, and the verdict is min-N-gated — a campaign censored
    below [min_n] usable runs per side refuses to conclude.
    [telemetry_a]/[telemetry_b] trace each arm into its own
    {!Stz_telemetry.Trace} (separate traces, exported as two process
    groups). *)
val compare_campaigns :
  ?alpha:float ->
  ?policy:Supervisor.policy ->
  ?profile:Stz_faults.Fault.profile ->
  ?limits:Stz_vm.Interp.limits ->
  ?jobs:int ->
  ?telemetry_a:Stz_telemetry.Trace.t ->
  ?telemetry_b:Stz_telemetry.Trace.t ->
  min_n:int ->
  config:Config.t ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Opt.level ->
  Stz_vm.Opt.level ->
  Stz_vm.Ir.program ->
  Supervisor.campaign * Supervisor.campaign * Experiment.gated

(** Compare two optimization levels of the same program under
    STABILIZER, per §6: returns the comparison where [speedup > 1]
    means the *second* level is faster. *)
val compare_opt_levels :
  ?alpha:float ->
  ?jobs:int ->
  ?limits:Stz_vm.Interp.limits ->
  config:Config.t ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Opt.level ->
  Stz_vm.Opt.level ->
  Stz_vm.Ir.program ->
  Experiment.comparison
