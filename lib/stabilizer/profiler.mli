(** Per-function attribution of the simulated machine's performance
    counters — the "sampling with performance counters" infrastructure
    the paper's §8 sketches for detecting layout-related performance
    problems. Each function accumulates the *exclusive* delta of every
    hardware counter (cycles, cache misses at each level, TLB misses,
    branch mispredictions) between the runtime's entry/exit hooks. *)

type entry = {
  fid : int;
  name : string;
  calls : int;
  exclusive_cycles : int;  (** cycles spent in the function itself *)
  counters : Stz_machine.Hierarchy.counters;
      (** exclusive counter deltas, [counters.cycles = exclusive_cycles] *)
}

type t

(** [create p] sets up counters for every function of [p]. *)
val create : Stz_vm.Ir.program -> t

(** Hooks, called with the machine's current counter snapshot. *)
val on_enter : t -> fid:int -> at:Stz_machine.Hierarchy.counters -> unit

val on_leave : t -> fid:int -> at:Stz_machine.Hierarchy.counters -> unit

(** Close attribution at the end of the run. *)
val finish : t -> at:Stz_machine.Hierarchy.counters -> unit

(** Entries sorted by exclusive cycles, hottest first. *)
val hottest : t -> entry list

(** Total attributed cycles (= run cycles once finished). *)
val total_cycles : t -> int

(** Merge per-run profiles of the same program into one table, summing
    calls and counters per function, hottest first. *)
val merge_entries : entry list list -> entry list
