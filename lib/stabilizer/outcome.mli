(** Classification of one run: every way a run can end, as a value. The
    sampling layer and the campaign supervisor both route runs through
    this type instead of letting [Interp.Fuel_exhausted] and friends
    abort a whole campaign and destroy the samples already gathered.

    Censored outcomes carry what the machine measured before the run
    was cut off — the {!Runtime.result} for runs that finished but were
    rejected by a gate, the {!Runtime.partial} for runs that trapped —
    so failure telemetry is never silently dropped. *)

type run_outcome =
  | Completed of Runtime.result
  | Trapped of Stz_faults.Fault.fault_class * Runtime.partial option
      (** the fault class, plus the counters at the trap when the run
          got far enough to measure anything ([None] only for traps
          raised outside the runtime, e.g. a worker-side Marshal
          failure) *)
  | Budget_exceeded of Runtime.result
      (** the run finished but took longer than the calibrated cycle
          budget — censored, like a watchdog kill in a real harness;
          the full result is retained for telemetry *)
  | Invalid_result of Runtime.result
      (** the run finished with a value different from the reference —
          a silently corrupted computation *)
  | Worker_lost
      (** the {!Parallel} worker executing the run died (crash, kill,
          nonzero exit) before reporting a result — censored like any
          other failure; never produced by the in-process path. No
          counters survive: the worker took them down with it. *)
  | Worker_hung
      (** the {!Parallel} worker executing the run went silent past the
          pool watchdog's grace and was SIGKILLed — the run wedged
          (infinite loop, deadlock) rather than crashed. Censored like
          {!Worker_lost}: no counters survive. Never produced without a
          watchdog. *)

(** Map a trap to its fault class: [Fuel_exhausted] is fuel starvation,
    [Call_depth_exceeded] depth blowout, [Injected_oom]/[Out_of_memory]
    allocation failure; a {!Runtime.Trap} wrapper is unwrapped first;
    anything else is {!Stz_faults.Fault.Unknown_trap}. *)
val classify_exn : exn -> Stz_faults.Fault.fault_class

(** [check ?budget_cycles ?reference r] grades a completed run against
    the campaign's gates (cycle budget first, then reference value). *)
val check : ?budget_cycles:int -> ?reference:int -> Runtime.result -> run_outcome

(** One run that cannot raise: executes {!Runtime.run} and classifies
    whatever happens, keeping partial counters from {!Runtime.Trap}. *)
val run :
  ?limits:Stz_vm.Interp.limits ->
  ?machine_factory:(unit -> Stz_machine.Hierarchy.t) ->
  ?env_wrap:(Stz_vm.Interp.env -> Stz_vm.Interp.env) ->
  ?budget_cycles:int ->
  ?reference:int ->
  ?events:bool ->
  ?profiled:bool ->
  config:Config.t ->
  seed:int64 ->
  Stz_vm.Ir.program ->
  args:int list ->
  run_outcome

(** The counters an outcome carries, however it ended: [Some] for
    completed and gate-censored runs, the trap's partial state when one
    was captured, [None] for lost workers. *)
val partial : run_outcome -> Runtime.partial option

val to_string : run_outcome -> string

(** Compact outcome tag for CSV / checkpoint files: ["completed"],
    ["budget-exceeded"], ["invalid-result"], ["worker-lost"],
    ["worker-hung"] or the fault-class name. *)
val tag : run_outcome -> string
