(** Classification of one run: every way a run can end, as a value. The
    sampling layer and the campaign supervisor both route runs through
    this type instead of letting [Interp.Fuel_exhausted] and friends
    abort a whole campaign and destroy the samples already gathered. *)

type run_outcome =
  | Completed of Runtime.result
  | Trapped of Stz_faults.Fault.fault_class
  | Budget_exceeded
      (** the run finished but took longer than the calibrated cycle
          budget — censored, like a watchdog kill in a real harness *)
  | Invalid_result
      (** the run finished with a value different from the reference —
          a silently corrupted computation *)
  | Worker_lost
      (** the {!Parallel} worker executing the run died (crash, kill,
          nonzero exit) before reporting a result — censored like any
          other failure; never produced by the in-process path *)

(** Map a trap to its fault class: [Fuel_exhausted] is fuel starvation,
    [Call_depth_exceeded] depth blowout, [Injected_oom]/[Out_of_memory]
    allocation failure; anything else is {!Stz_faults.Fault.Unknown_trap}. *)
val classify_exn : exn -> Stz_faults.Fault.fault_class

(** [check ?budget_cycles ?reference r] grades a completed run against
    the campaign's gates (cycle budget first, then reference value). *)
val check : ?budget_cycles:int -> ?reference:int -> Runtime.result -> run_outcome

(** One run that cannot raise: executes {!Runtime.run} and classifies
    whatever happens. *)
val run :
  ?limits:Stz_vm.Interp.limits ->
  ?machine_factory:(unit -> Stz_machine.Hierarchy.t) ->
  ?env_wrap:(Stz_vm.Interp.env -> Stz_vm.Interp.env) ->
  ?budget_cycles:int ->
  ?reference:int ->
  config:Config.t ->
  seed:int64 ->
  Stz_vm.Ir.program ->
  args:int list ->
  run_outcome

val to_string : run_outcome -> string

(** Compact outcome tag for CSV / checkpoint files: ["completed"],
    ["budget-exceeded"], ["invalid-result"], ["worker-lost"] or the
    fault-class name. *)
val tag : run_outcome -> string
