(** Repeated-run sampling. Each run gets an independent seed derived
    from [base_seed], so the sample is drawn over the space of layouts
    — the paper's point that a single binary is a single layout sample
    no matter how many times it runs.

    Runs that trap ([Interp.Fuel_exhausted], [Call_depth_exceeded],
    allocator OOM, …) no longer abort the loop and destroy the samples
    already gathered: each run is classified through
    {!Outcome.run_outcome}, completed runs land in [times]/[results],
    and censored runs are reported in [failures].

    With [jobs > 1] the runs execute on a {!Parallel} fork pool. Every
    run is a pure function of its seed, so the merged sample is
    bit-identical to the serial one regardless of worker count or
    completion order; a worker that dies costs exactly the run it was
    executing, censored as {!Worker_lost}. *)

(** Why a run was censored. Unlike a {!Stz_faults.Fault.fault_class},
    this also covers the gate and harness outcomes that are not faults
    of the run itself (formerly mis-reported as [Unknown_trap]). *)
type failure_kind =
  | Faulted of Stz_faults.Fault.fault_class  (** the run trapped *)
  | Budget_exceeded  (** over the supervisor's cycle budget *)
  | Invalid_result  (** return value differs from the reference *)
  | Worker_lost  (** the parallel worker died mid-run *)
  | Worker_hung
      (** the parallel worker wedged mid-run and was killed by the pool
          watchdog *)

type failure = {
  run : int;  (** run index within the sample *)
  seed : int64;  (** the exact seed that reproduces the failure *)
  kind : failure_kind;
  at_censoring : Runtime.partial option;
      (** what the machine had measured when the run was censored.
          [Some] whenever the run got far enough to measure anything:
          always for {!Budget_exceeded} and {!Invalid_result} (the run
          finished, only the gate rejected it), and for every
          {!Faulted} run whose trap was raised inside the runtime.
          [None] only for {!Worker_lost} and {!Worker_hung} (the
          counters died with the worker process) and for traps raised
          before or outside the runtime. Earlier versions dropped these counters silently;
          rollups count them under the [censored.*] metric keys,
          separate from the [counters.*] sums over completed runs. *)
}

type t = {
  times : float array;  (** virtual seconds per *completed* run *)
  cycles : int array;
  results : Runtime.result array;
  failures : failure list;  (** censored runs, in run order *)
  outcomes : (int64 * Outcome.run_outcome) array;
      (** the raw per-run classification the other fields are views of,
          in run order — what trace/metrics rollups consume *)
}

val failure_kind_to_string : failure_kind -> string

(** [events] forwards to {!Runtime.run}, populating each result's
    telemetry stream; [profiled] likewise enables the per-function
    profiler. Both default to off. *)
val collect :
  ?jobs:int ->
  ?limits:Stz_vm.Interp.limits ->
  ?profile:Stz_faults.Fault.profile ->
  ?events:bool ->
  ?profiled:bool ->
  config:Config.t ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Ir.program ->
  t

(** The per-run seeds [collect] uses, in order: sequential
    {!Stz_prng.Splitmix.split}s of [base_seed]. Exposed so the
    supervisor's checkpoint/resume can re-derive them. *)
val seeds : base_seed:int64 -> runs:int -> int64 array

(** [collect_outcomes] is the raw classified stream, one entry per run
    (seed, outcome) — nothing censored, nothing re-ordered (the merge
    is in run order even with [jobs > 1]). [profile] injects faults per
    {!Stz_faults.Injector}. *)
val collect_outcomes :
  ?jobs:int ->
  ?limits:Stz_vm.Interp.limits ->
  ?profile:Stz_faults.Fault.profile ->
  ?events:bool ->
  ?profiled:bool ->
  config:Config.t ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Ir.program ->
  (int64 * Outcome.run_outcome) array

(** Classify-and-censor an outcome stream into a sample (pure; what
    {!collect} applies to {!collect_outcomes}). *)
val of_outcomes : (int64 * Outcome.run_outcome) array -> t

(** Convenience: just the times of completed runs. *)
val times :
  ?jobs:int ->
  ?limits:Stz_vm.Interp.limits ->
  ?profile:Stz_faults.Fault.profile ->
  config:Config.t ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Ir.program ->
  float array
