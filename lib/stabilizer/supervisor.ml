module Fault = Stz_faults.Fault
module Injector = Stz_faults.Injector
module Interp = Stz_vm.Interp
module Splitmix = Stz_prng.Splitmix
module Hierarchy = Stz_machine.Hierarchy
module Event = Stz_telemetry.Event
module Trace = Stz_telemetry.Trace

type policy = {
  max_retries : int;
  calibration_runs : int;
  budget_margin : float;
  checkpoint_every : int;
}

let default_policy =
  { max_retries = 3; calibration_runs = 5; budget_margin = 8.0; checkpoint_every = 1 }

type completed = {
  cycles : int;
  seconds : float;
  return_value : int;
  instructions : int;
  counters : Hierarchy.counters;
  epochs : int;
  relocations : int;
  adaptive_triggers : int;
  allocations : int;
  frees : int;
}

type stored_outcome =
  | Done of completed
  | Trapped of Fault.fault_class * Runtime.partial option
  | Budget_exceeded of Runtime.partial
  | Invalid_result of Runtime.partial
  | Worker_lost

type record = {
  run : int;
  seed : int64;
  retries : int;
  outcome : stored_outcome;
}

type campaign = {
  base_seed : int64;
  runs : int;
  profile_fp : string;
  config_desc : string;
  records : record list;
  quarantined : int64 list;
  budget_cycles : int option;
  budget_fuel : int option;
  reference : int option;
}

type summary = {
  runs : int;
  completed : int;
  censored : int;
  retried_runs : int;
  total_retries : int;
  quarantined : int;
  budget_exceeded : int;
  invalid : int;
  worker_lost : int;
  by_class : (Fault.fault_class * int) list;
  retry_histogram : int array;
}

exception Mismatch of string

(* ------------------------------------------------------------------ *)
(* JSON checkpoint format                                              *)
(* ------------------------------------------------------------------ *)

let seconds_of_cycles cycles = float_of_int cycles /. 3.2e9

let stored_tag = function
  | Done _ -> "completed"
  | Trapped (c, _) -> Fault.class_to_string c
  | Budget_exceeded _ -> "budget-exceeded"
  | Invalid_result _ -> "invalid-result"
  | Worker_lost -> "worker-lost"

let counters_to_json c =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Hierarchy.counters_fields c))

let counters_of_json j =
  match j with
  | Json.Obj fields ->
      Some
        (Hierarchy.counters_of_fields
           (List.filter_map
              (fun (k, v) -> Option.map (fun v -> (k, v)) (Json.to_int v))
              fields))
  | _ -> None

let partial_to_json (pp : Runtime.partial) =
  Json.Obj
    [
      ("cycles", Json.Int pp.Runtime.p_cycles);
      ("epochs", Json.Int pp.Runtime.p_epochs);
      ("relocations", Json.Int pp.Runtime.p_relocations);
      ("adaptive_triggers", Json.Int pp.Runtime.p_adaptive_triggers);
      ("counters", counters_to_json pp.Runtime.p_counters);
    ]

let partial_of_json j =
  let ( let* ) = Option.bind in
  let* p_cycles = Option.bind (Json.member "cycles" j) Json.to_int in
  let* p_epochs = Option.bind (Json.member "epochs" j) Json.to_int in
  let* p_relocations = Option.bind (Json.member "relocations" j) Json.to_int in
  let* p_adaptive_triggers =
    Option.bind (Json.member "adaptive_triggers" j) Json.to_int
  in
  let* p_counters = Option.bind (Json.member "counters" j) counters_of_json in
  Some
    {
      Runtime.p_cycles;
      p_counters;
      p_epochs;
      p_relocations;
      p_adaptive_triggers;
    }

let record_to_json r =
  let base =
    [
      ("run", Json.Int r.run);
      ("seed", Json.of_int64 r.seed);
      ("retries", Json.Int r.retries);
      ("outcome", Json.String (stored_tag r.outcome));
    ]
  in
  match r.outcome with
  | Done c ->
      Json.Obj
        (base
        @ [
            ("cycles", Json.Int c.cycles);
            ("value", Json.Int c.return_value);
            ("instructions", Json.Int c.instructions);
            ("counters", counters_to_json c.counters);
            ("epochs", Json.Int c.epochs);
            ("relocations", Json.Int c.relocations);
            ("adaptive_triggers", Json.Int c.adaptive_triggers);
            ("allocations", Json.Int c.allocations);
            ("frees", Json.Int c.frees);
          ])
  | Trapped (_, Some pp) | Budget_exceeded pp | Invalid_result pp ->
      Json.Obj (base @ [ ("at", partial_to_json pp) ])
  | Trapped (_, None) | Worker_lost -> Json.Obj base

let record_of_json j =
  let ( let* ) = Option.bind in
  let* run = Option.bind (Json.member "run" j) Json.to_int in
  let* seed = Option.bind (Json.member "seed" j) Json.to_int64 in
  let* retries = Option.bind (Json.member "retries" j) Json.to_int in
  let* tag = Option.bind (Json.member "outcome" j) Json.to_str in
  (* Censored-run counters appeared in checkpoint version 2; older
     checkpoints load with them absent, never rejected. *)
  let at = Option.bind (Json.member "at" j) partial_of_json in
  let require_at k =
    match at with
    | Some pp -> Some (k pp)
    | None ->
        Some
          (k
             {
               Runtime.p_cycles = 0;
               p_counters = Hierarchy.counters_zero;
               p_epochs = 0;
               p_relocations = 0;
               p_adaptive_triggers = 0;
             })
  in
  let* outcome =
    match tag with
    | "completed" ->
        let* cycles = Option.bind (Json.member "cycles" j) Json.to_int in
        let* return_value = Option.bind (Json.member "value" j) Json.to_int in
        let* instructions =
          Option.bind (Json.member "instructions" j) Json.to_int
        in
        let int_field name default =
          Option.value ~default
            (Option.bind (Json.member name j) Json.to_int)
        in
        let counters =
          match Option.bind (Json.member "counters" j) counters_of_json with
          | Some c -> c
          | None ->
              Hierarchy.counters_of_fields
                [ ("cycles", cycles); ("instructions", instructions) ]
        in
        Some
          (Done
             {
               cycles;
               seconds = seconds_of_cycles cycles;
               return_value;
               instructions;
               counters;
               epochs = int_field "epochs" 1;
               relocations = int_field "relocations" 0;
               adaptive_triggers = int_field "adaptive_triggers" 0;
               allocations = int_field "allocations" 0;
               frees = int_field "frees" 0;
             })
    | "budget-exceeded" -> require_at (fun pp -> Budget_exceeded pp)
    | "invalid-result" -> require_at (fun pp -> Invalid_result pp)
    | "worker-lost" -> Some Worker_lost
    | s -> Option.map (fun c -> Trapped (c, at)) (Fault.class_of_string s)
  in
  Some { run; seed; retries; outcome }

let opt_int = function None -> Json.Null | Some i -> Json.Int i

let to_json c =
  Json.Obj
    [
      ("version", Json.Int 2);
      ("base_seed", Json.of_int64 c.base_seed);
      ("runs", Json.Int c.runs);
      ("profile", Json.String c.profile_fp);
      ("config", Json.String c.config_desc);
      ("reference", opt_int c.reference);
      ("budget_cycles", opt_int c.budget_cycles);
      ("budget_fuel", opt_int c.budget_fuel);
      ("quarantined", Json.List (List.map Json.of_int64 c.quarantined));
      ("records", Json.List (List.map record_to_json c.records));
    ]

let of_json j =
  let get name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "checkpoint: bad or missing %S" name)
  in
  let get_opt name =
    match Json.member name j with
    | Some (Json.Int i) -> Ok (Some i)
    | Some Json.Null | None -> Ok None
    | Some _ -> Error (Printf.sprintf "checkpoint: bad %S" name)
  in
  let ( let* ) = Result.bind in
  let* base_seed = get "base_seed" Json.to_int64 in
  let* runs = get "runs" Json.to_int in
  let* profile_fp = get "profile" Json.to_str in
  let* config_desc = get "config" Json.to_str in
  let* reference = get_opt "reference" in
  let* budget_cycles = get_opt "budget_cycles" in
  let* budget_fuel = get_opt "budget_fuel" in
  let* quarantined_js = get "quarantined" Json.to_list in
  let* records_js = get "records" Json.to_list in
  let* quarantined =
    List.fold_left
      (fun acc x ->
        Result.bind acc (fun l ->
            match Json.to_int64 x with
            | Some s -> Ok (s :: l)
            | None -> Error "checkpoint: bad quarantined seed"))
      (Ok []) quarantined_js
    |> Result.map List.rev
  in
  let* records =
    List.fold_left
      (fun acc x ->
        Result.bind acc (fun l ->
            match record_of_json x with
            | Some r -> Ok (r :: l)
            | None -> Error "checkpoint: bad record"))
      (Ok []) records_js
    |> Result.map List.rev
  in
  Ok
    {
      base_seed;
      runs;
      profile_fp;
      config_desc;
      records;
      quarantined;
      budget_cycles;
      budget_fuel;
      reference;
    }

let save path c =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (to_json c));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let load path =
  match
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  with
  | exception Sys_error e -> Error e
  | text -> Result.bind (Json.of_string text) of_json

(* ------------------------------------------------------------------ *)
(* Campaign execution                                                  *)
(* ------------------------------------------------------------------ *)

(* Retry seeds are derived from the run's primary seed, not drawn from
   the campaign stream, so a retry never shifts the seeds of later runs
   — the property that makes checkpoint/resume exact. *)
let attempt_seed primary k =
  if k = 0 then primary
  else begin
    let g = Splitmix.create primary in
    let s = ref primary in
    for _ = 1 to k do
      s := Splitmix.split g
    done;
    !s
  end

(* The synthetic stream standing in for a checkpointed run on resume:
   the lane advances by the run's recorded cycles, so the post-resume
   part of the trace lines up with where the interrupted campaign left
   off, but the run's inner events (which happened in a previous
   process) are represented by a single "restored" span. *)
let restored_stream (r : record) =
  let args =
    [
      ("run", Json.Int r.run);
      Spans.seed_arg r.seed;
      ("retries", Json.Int r.retries);
      ("outcome", Json.String (stored_tag r.outcome));
    ]
  in
  let span_and_hw dur counters =
    [
      Event.Span { name = "restored"; cat = "run"; lane = 0; ts = 0; dur; args };
      Event.Counter
        {
          name = "hw";
          cat = "run";
          lane = 0;
          ts = dur;
          values = Hierarchy.counters_fields counters;
        };
    ]
  in
  match r.outcome with
  | Done c -> span_and_hw c.cycles c.counters
  | Trapped (_, Some pp) | Budget_exceeded pp | Invalid_result pp ->
      span_and_hw pp.Runtime.p_cycles pp.Runtime.p_counters
  | Trapped (_, None) | Worker_lost ->
      [ Event.Instant { name = "restored"; cat = "run"; lane = 0; ts = 0; args } ]

let pool_event_args = function
  | Parallel.Worker_spawned { pid; tasks } ->
      ("worker-spawned", [ ("pid", Json.Int pid); ("tasks", Json.Int tasks) ])
  | Parallel.Worker_done { pid } -> ("worker-done", [ ("pid", Json.Int pid) ])
  | Parallel.Worker_died { pid; lost_task; respawned } ->
      ( "worker-died",
        [
          ("pid", Json.Int pid);
          ( "lost_task",
            match lost_task with Some i -> Json.Int i | None -> Json.Null );
          ("respawned", Json.Bool respawned);
        ] )

let run_campaign ?(policy = default_policy) ?(profile = Fault.none)
    ?(limits = Interp.default_limits) ?(jobs = 1) ?checkpoint ?(resume = false)
    ?on_record ?telemetry ~config ~base_seed ~runs ~args p =
  if runs < 1 then raise (Mismatch "run_campaign: runs must be >= 1");
  let jobs = Stdlib.max 1 jobs in
  (* Captured before any fork: workers must agree with the parent on
     whether to produce events, whatever process executes the run. *)
  let tracing = telemetry <> None in
  let control name args =
    match telemetry with
    | Some tr -> Trace.control_instant tr ~args name
    | None -> ()
  in
  let profile_fp = Fault.fingerprint profile in
  let config_desc = Config.describe config in
  let primary = Sample.seeds ~base_seed ~runs in
  let loaded =
    match (checkpoint, resume) with
    | Some path, true when Sys.file_exists path -> (
        match load path with
        | Error e -> raise (Mismatch ("checkpoint " ^ path ^ ": " ^ e))
        | Ok c ->
            if c.base_seed <> base_seed then
              raise (Mismatch "checkpoint belongs to a different base seed");
            if c.runs <> runs then
              raise (Mismatch "checkpoint belongs to a different run count");
            if c.profile_fp <> profile_fp then
              raise (Mismatch "checkpoint belongs to a different fault profile");
            if c.config_desc <> config_desc then
              raise (Mismatch "checkpoint belongs to a different configuration");
            Some c)
    | _ -> None
  in
  let records : record option array = Array.make runs None in
  (match loaded with
  | Some c ->
      List.iter
        (fun r -> if r.run >= 0 && r.run < runs then records.(r.run) <- Some r)
        c.records
  | None -> ());
  control "campaign-start"
    [
      ("runs", Json.Int runs);
      ("base_seed", Json.String (Int64.to_string base_seed));
      ("profile", Json.String profile_fp);
      ("config", Json.String config_desc);
      ("resumed", Json.Bool (loaded <> None));
    ];
  (* Checkpointed runs re-enter the trace as synthetic spans, in run
     order, so the resumed timeline is a consistent continuation. *)
  (match telemetry with
  | Some tr ->
      Array.iteri
        (fun i r ->
          match r with
          | Some r -> Trace.add_run tr ~run:i (restored_stream r)
          | None -> ())
        records
  | None -> ());
  let quarantine : (int64, unit) Hashtbl.t = Hashtbl.create 64 in
  let quarantined = ref [] in
  let add_quarantine seed =
    if not (Hashtbl.mem quarantine seed) then begin
      Hashtbl.add quarantine seed ();
      quarantined := seed :: !quarantined
    end
  in
  (match loaded with
  | Some c -> List.iter add_quarantine c.quarantined
  | None -> ());
  let budget_cycles = ref (Option.bind loaded (fun c -> c.budget_cycles)) in
  let budget_fuel = ref (Option.bind loaded (fun c -> c.budget_fuel)) in
  (* The reference value comes from one clean (injection-free) run; a
     campaign resumed from a checkpoint reuses the recorded decision so
     the continuation matches the uninterrupted campaign exactly. *)
  let reference =
    match loaded with
    | Some c -> c.reference
    | None ->
        let rec probe k =
          if k > policy.max_retries then None
          else
            match
              Runtime.run ~limits ~config ~seed:(attempt_seed primary.(0) k) p
                ~args
            with
            | r -> Some r.Runtime.return_value
            | exception ((Stack_overflow | Assert_failure _) as fatal) ->
                raise fatal
            | exception _ -> probe (k + 1)
        in
        probe 0
  in
  control "reference-probe"
    [
      ( "value",
        match reference with Some v -> Json.Int v | None -> Json.Null );
    ];
  (* Budget calibration state: completed runs in run order feed the
     calibrator until it freezes. Resumed records re-feed it, which
     reproduces the budgets an uninterrupted campaign would have set. *)
  let calib_cycles = ref [] in
  let calib_fuel = ref [] in
  let calib_n = ref 0 in
  let feed_calibration (c : completed) =
    if !budget_cycles = None && !calib_n < policy.calibration_runs then begin
      calib_cycles := c.cycles :: !calib_cycles;
      calib_fuel := c.instructions :: !calib_fuel;
      incr calib_n;
      if !calib_n >= policy.calibration_runs then begin
        let scale xs =
          int_of_float
            (policy.budget_margin
            *. float_of_int (List.fold_left Stdlib.max 1 xs))
        in
        budget_cycles := Some (scale !calib_cycles);
        budget_fuel := Some (scale !calib_fuel)
      end
    end
  in
  (match loaded with
  | Some _ ->
      if !budget_cycles = None then
        Array.iter
          (function
            | Some { outcome = Done c; _ } -> feed_calibration c
            | _ -> ())
          records
  | None -> ());
  let campaign_so_far () =
    {
      base_seed;
      runs;
      profile_fp;
      config_desc;
      records =
        Array.to_list records |> List.filter_map Fun.id
        |> List.sort (fun a b -> compare a.run b.run);
      quarantined = List.rev !quarantined;
      budget_cycles = !budget_cycles;
      budget_fuel = !budget_fuel;
      reference;
    }
  in
  let finished = ref 0 in
  let maybe_checkpoint ~force =
    match checkpoint with
    | Some path when force || !finished mod Stdlib.max 1 policy.checkpoint_every = 0
      ->
        save path (campaign_so_far ());
        control "checkpoint" [ ("finished", Json.Int !finished) ]
    | _ -> ()
  in
  let effective_limits () =
    match !budget_fuel with
    | Some fuel ->
        {
          limits with
          Interp.max_instructions = Stdlib.min limits.Interp.max_instructions fuel;
        }
    | None -> limits
  in
  let execute seed =
    let plan = Injector.plan ~profile ~limits:(effective_limits ()) ~seed () in
    Outcome.run ~limits:plan.Injector.limits
      ?machine_factory:plan.Injector.machine_factory
      ~env_wrap:plan.Injector.env_wrap ?budget_cycles:!budget_cycles ?reference
      ~events:tracing ~config ~seed p ~args
  in
  let store_outcome = function
    | Outcome.Completed r ->
        Done
          {
            cycles = r.Runtime.cycles;
            seconds = r.Runtime.virtual_seconds;
            return_value = r.Runtime.return_value;
            instructions = r.Runtime.counters.Hierarchy.instructions;
            counters = r.Runtime.counters;
            epochs = r.Runtime.epochs;
            relocations = r.Runtime.relocations;
            adaptive_triggers = r.Runtime.adaptive_triggers;
            allocations = r.Runtime.heap_stats.Stz_alloc.Allocator.allocations;
            frees = r.Runtime.heap_stats.Stz_alloc.Allocator.frees;
          }
    | Outcome.Trapped (c, pp) -> Trapped (c, pp)
    | Outcome.Budget_exceeded r -> Budget_exceeded (Runtime.partial_of_result r)
    | Outcome.Invalid_result r -> Invalid_result (Runtime.partial_of_result r)
    | Outcome.Worker_lost -> Worker_lost
  in
  (* One supervised run: the bounded retry loop. Quarantine lookups see
     the global table as of the call (in a worker: as of the fork) plus
     this run's own failed attempts; the failed seeds come back with
     the record so the parent can merge them in run order. Cross-run
     quarantine hits require two splitmix streams to collide (~2^-64),
     which is what makes the parallel merge bit-identical to a serial
     campaign. *)
  let attempt_run i =
    let failed_seeds = ref [] in
    let streams = ref [] in
    let note k seed outcome =
      if tracing then
        streams :=
          Spans.of_outcome
            ~name:(if k = 0 then "run" else "retry")
            ~args:
              (("run", Json.Int i) :: Spans.seed_arg seed
              :: (if k > 0 then [ ("attempt", Json.Int k) ] else []))
            outcome
          :: !streams
    in
    let rec attempt k =
      let seed = attempt_seed primary.(i) k in
      let outcome =
        if Hashtbl.mem quarantine seed || List.mem seed !failed_seeds then
          (* Known-bad seed: counts as a failed attempt, not re-run. *)
          Outcome.Trapped (Fault.Unknown_trap, None)
        else execute seed
      in
      note k seed outcome;
      match outcome with
      | Outcome.Completed _ ->
          { run = i; seed; retries = k; outcome = store_outcome outcome }
      | failed ->
          failed_seeds := seed :: !failed_seeds;
          if k < policy.max_retries then attempt (k + 1)
          else { run = i; seed; retries = k; outcome = store_outcome failed }
    in
    let r = attempt 0 in
    (r, List.rev !failed_seeds, Spans.sequence (List.rev !streams))
  in
  (* All bookkeeping stays in the parent and happens in run order, so
     quarantine, calibration, on_record and checkpoints are identical
     whatever the worker count. *)
  let deliver i ((r : record), failed_seeds, events) =
    List.iter add_quarantine failed_seeds;
    (match telemetry with
    | Some tr -> Trace.add_run tr ~run:i events
    | None -> ());
    let unfrozen = !budget_cycles = None in
    (match r.outcome with Done c -> feed_calibration c | _ -> ());
    (if unfrozen then
       match !budget_cycles with
       | Some b ->
           control "budgets-frozen"
             [
               ("budget_cycles", Json.Int b);
               ( "budget_fuel",
                 match !budget_fuel with
                 | Some f -> Json.Int f
                 | None -> Json.Null );
             ]
       | None -> ());
    records.(i) <- Some r;
    incr finished;
    (match on_record with Some f -> f r | None -> ());
    maybe_checkpoint ~force:false
  in
  let pending = ref [] in
  for i = runs - 1 downto 0 do
    if records.(i) = None then pending := i :: !pending
  done;
  if jobs <= 1 then List.iter (fun i -> deliver i (attempt_run i)) !pending
  else begin
    (* Budget calibration is order-dependent — budgets freeze after the
       first [calibration_runs] completed runs and tighten the limits
       of every later run — so runs execute serially until the budgets
       are frozen; only the remainder fans out. *)
    let rec serial_head = function
      | i :: rest when !budget_cycles = None ->
          deliver i (attempt_run i);
          serial_head rest
      | rest -> rest
    in
    let tasks = Array.of_list (serial_head !pending) in
    if Array.length tasks > 0 then begin
      (* Worker results arrive in completion order; [buffered] and
         [next_run] re-serialize them so delivery happens in run order
         — a mid-flight checkpoint therefore always holds a prefix of
         completed runs, exactly what a serial campaign interrupted at
         the same point would have written, and resume composes with
         in-flight workers without double-running anything. *)
      let buffered = Array.make runs None in
      let next_run = ref 0 in
      let advance () =
        let blocked = ref false in
        while (not !blocked) && !next_run < runs do
          match (records.(!next_run), buffered.(!next_run)) with
          | Some _, _ -> incr next_run
          | None, Some payload ->
              buffered.(!next_run) <- None;
              deliver !next_run payload;
              incr next_run
          | None, None -> blocked := true
        done
      in
      let on_result pos res =
        let i = tasks.(pos) in
        let payload =
          match res with
          | Parallel.Value record_seeds_events -> record_seeds_events
          | Parallel.Lost ->
              ( { run = i; seed = primary.(i); retries = 0; outcome = Worker_lost },
                [],
                if tracing then
                  Spans.of_outcome ~name:"run"
                    ~args:[ ("run", Json.Int i); Spans.seed_arg primary.(i) ]
                    Outcome.Worker_lost
                else [] )
        in
        buffered.(i) <- Some payload;
        advance ()
      in
      let on_pool_event =
        Option.map
          (fun tr e ->
            let name, args = pool_event_args e in
            Trace.harness_instant tr ~args name)
          telemetry
      in
      ignore
        (Parallel.map ~on_result ?on_pool_event ~jobs
           ~f:(fun pos -> attempt_run tasks.(pos))
           (Array.length tasks))
    end
  end;
  let c = campaign_so_far () in
  (match checkpoint with Some path -> save path c | None -> ());
  (match telemetry with
  | Some tr ->
      let s = List.length (List.filter (fun r -> match r.outcome with Done _ -> true | _ -> false) c.records) in
      Trace.control_counter tr "campaign"
        ~values:
          [
            ("finished", List.length c.records);
            ("completed", s);
            ("quarantined", List.length c.quarantined);
          ]
  | None -> ());
  c

(* ------------------------------------------------------------------ *)
(* Derived views                                                       *)
(* ------------------------------------------------------------------ *)

let times c =
  c.records
  |> List.filter_map (fun r ->
         match r.outcome with Done d -> Some d.seconds | _ -> None)
  |> Array.of_list

let summarize c =
  let completed = ref 0 in
  let censored = ref 0 in
  let retried_runs = ref 0 in
  let total_retries = ref 0 in
  let budget_exceeded = ref 0 in
  let invalid = ref 0 in
  let worker_lost = ref 0 in
  let class_counts = Hashtbl.create 8 in
  let max_retries =
    List.fold_left (fun acc r -> Stdlib.max acc r.retries) 0 c.records
  in
  let retry_histogram = Array.make (max_retries + 1) 0 in
  List.iter
    (fun r ->
      retry_histogram.(r.retries) <- retry_histogram.(r.retries) + 1;
      if r.retries > 0 then incr retried_runs;
      total_retries := !total_retries + r.retries;
      match r.outcome with
      | Done _ -> incr completed
      | Budget_exceeded _ ->
          incr censored;
          incr budget_exceeded
      | Invalid_result _ ->
          incr censored;
          incr invalid
      | Worker_lost ->
          incr censored;
          incr worker_lost
      | Trapped (cls, _) ->
          incr censored;
          Hashtbl.replace class_counts cls
            (1 + Option.value ~default:0 (Hashtbl.find_opt class_counts cls)))
    c.records;
  {
    runs = c.runs;
    completed = !completed;
    censored = !censored;
    retried_runs = !retried_runs;
    total_retries = !total_retries;
    quarantined = List.length c.quarantined;
    budget_exceeded = !budget_exceeded;
    invalid = !invalid;
    worker_lost = !worker_lost;
    by_class =
      List.map
        (fun cls ->
          (cls, Option.value ~default:0 (Hashtbl.find_opt class_counts cls)))
        Fault.all_classes;
    retry_histogram;
  }

let verdict ?alpha ~min_n a b =
  Experiment.compare_samples_gated ?alpha ~min_n (times a) (times b)
