module Fault = Stz_faults.Fault
module Injector = Stz_faults.Injector
module Interp = Stz_vm.Interp
module Splitmix = Stz_prng.Splitmix
module Hierarchy = Stz_machine.Hierarchy
module Event = Stz_telemetry.Event
module Trace = Stz_telemetry.Trace
module Artifact = Stz_store.Artifact
module Monitor = Stz_monitor.Monitor

type policy = {
  max_retries : int;
  calibration_runs : int;
  budget_margin : float;
  checkpoint_every : int;
  hang_margin : float;
  hang_grace : float option;
}

let default_policy =
  {
    max_retries = 3;
    calibration_runs = 5;
    budget_margin = 8.0;
    checkpoint_every = 1;
    hang_margin = 25.0;
    hang_grace = None;
  }

type completed = {
  cycles : int;
  seconds : float;
  return_value : int;
  instructions : int;
  counters : Hierarchy.counters;
  epochs : int;
  relocations : int;
  adaptive_triggers : int;
  allocations : int;
  frees : int;
}

type stored_outcome =
  | Done of completed
  | Trapped of Fault.fault_class * Runtime.partial option
  | Budget_exceeded of Runtime.partial
  | Invalid_result of Runtime.partial
  | Worker_lost
  | Worker_hung

type record = {
  run : int;
  seed : int64;
  retries : int;
  outcome : stored_outcome;
}

type campaign = {
  base_seed : int64;
  runs : int;
  profile_fp : string;
  config_desc : string;
  records : record list;
  quarantined : int64 list;
  budget_cycles : int option;
  budget_fuel : int option;
  reference : int option;
}

type summary = {
  runs : int;
  completed : int;
  censored : int;
  retried_runs : int;
  total_retries : int;
  quarantined : int;
  budget_exceeded : int;
  invalid : int;
  worker_lost : int;
  worker_hung : int;
  by_class : (Fault.fault_class * int) list;
  retry_histogram : int array;
}

exception Mismatch of string

(* ------------------------------------------------------------------ *)
(* JSON checkpoint format                                              *)
(* ------------------------------------------------------------------ *)

let seconds_of_cycles cycles = float_of_int cycles /. 3.2e9

let stored_tag = function
  | Done _ -> "completed"
  | Trapped (c, _) -> Fault.class_to_string c
  | Budget_exceeded _ -> "budget-exceeded"
  | Invalid_result _ -> "invalid-result"
  | Worker_lost -> "worker-lost"
  | Worker_hung -> "worker-hung"

let counters_to_json c =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Hierarchy.counters_fields c))

let counters_of_json j =
  match j with
  | Json.Obj fields ->
      Some
        (Hierarchy.counters_of_fields
           (List.filter_map
              (fun (k, v) -> Option.map (fun v -> (k, v)) (Json.to_int v))
              fields))
  | _ -> None

let partial_to_json (pp : Runtime.partial) =
  Json.Obj
    [
      ("cycles", Json.Int pp.Runtime.p_cycles);
      ("epochs", Json.Int pp.Runtime.p_epochs);
      ("relocations", Json.Int pp.Runtime.p_relocations);
      ("adaptive_triggers", Json.Int pp.Runtime.p_adaptive_triggers);
      ("counters", counters_to_json pp.Runtime.p_counters);
    ]

let partial_of_json j =
  let ( let* ) = Option.bind in
  let* p_cycles = Option.bind (Json.member "cycles" j) Json.to_int in
  let* p_epochs = Option.bind (Json.member "epochs" j) Json.to_int in
  let* p_relocations = Option.bind (Json.member "relocations" j) Json.to_int in
  let* p_adaptive_triggers =
    Option.bind (Json.member "adaptive_triggers" j) Json.to_int
  in
  let* p_counters = Option.bind (Json.member "counters" j) counters_of_json in
  Some
    {
      Runtime.p_cycles;
      p_counters;
      p_epochs;
      p_relocations;
      p_adaptive_triggers;
    }

let record_to_json r =
  let base =
    [
      ("run", Json.Int r.run);
      ("seed", Json.of_int64 r.seed);
      ("retries", Json.Int r.retries);
      ("outcome", Json.String (stored_tag r.outcome));
    ]
  in
  match r.outcome with
  | Done c ->
      Json.Obj
        (base
        @ [
            ("cycles", Json.Int c.cycles);
            ("value", Json.Int c.return_value);
            ("instructions", Json.Int c.instructions);
            ("counters", counters_to_json c.counters);
            ("epochs", Json.Int c.epochs);
            ("relocations", Json.Int c.relocations);
            ("adaptive_triggers", Json.Int c.adaptive_triggers);
            ("allocations", Json.Int c.allocations);
            ("frees", Json.Int c.frees);
          ])
  | Trapped (_, Some pp) | Budget_exceeded pp | Invalid_result pp ->
      Json.Obj (base @ [ ("at", partial_to_json pp) ])
  | Trapped (_, None) | Worker_lost | Worker_hung -> Json.Obj base

let record_of_json j =
  let ( let* ) = Option.bind in
  let* run = Option.bind (Json.member "run" j) Json.to_int in
  let* seed = Option.bind (Json.member "seed" j) Json.to_int64 in
  let* retries = Option.bind (Json.member "retries" j) Json.to_int in
  let* tag = Option.bind (Json.member "outcome" j) Json.to_str in
  (* Censored-run counters appeared in checkpoint version 2; older
     checkpoints load with them absent, never rejected. *)
  let at = Option.bind (Json.member "at" j) partial_of_json in
  let require_at k =
    match at with
    | Some pp -> Some (k pp)
    | None ->
        Some
          (k
             {
               Runtime.p_cycles = 0;
               p_counters = Hierarchy.counters_zero;
               p_epochs = 0;
               p_relocations = 0;
               p_adaptive_triggers = 0;
             })
  in
  let* outcome =
    match tag with
    | "completed" ->
        let* cycles = Option.bind (Json.member "cycles" j) Json.to_int in
        let* return_value = Option.bind (Json.member "value" j) Json.to_int in
        let* instructions =
          Option.bind (Json.member "instructions" j) Json.to_int
        in
        let int_field name default =
          Option.value ~default
            (Option.bind (Json.member name j) Json.to_int)
        in
        let counters =
          match Option.bind (Json.member "counters" j) counters_of_json with
          | Some c -> c
          | None ->
              Hierarchy.counters_of_fields
                [ ("cycles", cycles); ("instructions", instructions) ]
        in
        Some
          (Done
             {
               cycles;
               seconds = seconds_of_cycles cycles;
               return_value;
               instructions;
               counters;
               epochs = int_field "epochs" 1;
               relocations = int_field "relocations" 0;
               adaptive_triggers = int_field "adaptive_triggers" 0;
               allocations = int_field "allocations" 0;
               frees = int_field "frees" 0;
             })
    | "budget-exceeded" -> require_at (fun pp -> Budget_exceeded pp)
    | "invalid-result" -> require_at (fun pp -> Invalid_result pp)
    | "worker-lost" -> Some Worker_lost
    | "worker-hung" -> Some Worker_hung
    | s -> Option.map (fun c -> Trapped (c, at)) (Fault.class_of_string s)
  in
  Some { run; seed; retries; outcome }

let opt_int = function None -> Json.Null | Some i -> Json.Int i

let to_json c =
  Json.Obj
    [
      ("version", Json.Int 2);
      ("base_seed", Json.of_int64 c.base_seed);
      ("runs", Json.Int c.runs);
      ("profile", Json.String c.profile_fp);
      ("config", Json.String c.config_desc);
      ("reference", opt_int c.reference);
      ("budget_cycles", opt_int c.budget_cycles);
      ("budget_fuel", opt_int c.budget_fuel);
      ("quarantined", Json.List (List.map Json.of_int64 c.quarantined));
      ("records", Json.List (List.map record_to_json c.records));
    ]

let of_json j =
  let get name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "checkpoint: bad or missing %S" name)
  in
  let get_opt name =
    match Json.member name j with
    | Some (Json.Int i) -> Ok (Some i)
    | Some Json.Null | None -> Ok None
    | Some _ -> Error (Printf.sprintf "checkpoint: bad %S" name)
  in
  let ( let* ) = Result.bind in
  let* base_seed = get "base_seed" Json.to_int64 in
  let* runs = get "runs" Json.to_int in
  let* profile_fp = get "profile" Json.to_str in
  let* config_desc = get "config" Json.to_str in
  let* reference = get_opt "reference" in
  let* budget_cycles = get_opt "budget_cycles" in
  let* budget_fuel = get_opt "budget_fuel" in
  let* quarantined_js = get "quarantined" Json.to_list in
  let* records_js = get "records" Json.to_list in
  let* quarantined =
    List.fold_left
      (fun acc x ->
        Result.bind acc (fun l ->
            match Json.to_int64 x with
            | Some s -> Ok (s :: l)
            | None -> Error "checkpoint: bad quarantined seed"))
      (Ok []) quarantined_js
    |> Result.map List.rev
  in
  let* records =
    List.fold_left
      (fun acc x ->
        Result.bind acc (fun l ->
            match record_of_json x with
            | Some r -> Ok (r :: l)
            | None -> Error "checkpoint: bad record"))
      (Ok []) records_js
    |> Result.map List.rev
  in
  Ok
    {
      base_seed;
      runs;
      profile_fp;
      config_desc;
      records;
      quarantined;
      budget_cycles;
      budget_fuel;
      reference;
    }

(* Retry seeds are derived from the run's primary seed, not drawn from
   the campaign stream, so a retry never shifts the seeds of later runs
   — the property that makes checkpoint/resume exact. *)
let attempt_seed primary k =
  if k = 0 then primary
  else begin
    let g = Splitmix.create primary in
    let s = ref primary in
    for _ = 1 to k do
      s := Splitmix.split g
    done;
    !s
  end

(* ------------------------------------------------------------------ *)
(* Checkpoint IO: v3 checksummed container                             *)
(* ------------------------------------------------------------------ *)

(* Version 3 checkpoints are {!Stz_store.Artifact} containers: a meta
   record first (identity + the reference decision, both fixed at
   campaign start), one record per finished run in run order, and the
   evolving supervisor state (quarantine, budgets) last. Every record
   is length-prefixed and CRC32-checksummed, and the file is written
   durably (fsync of file and directory before the rename), so a crash
   or torn write costs at most a suffix — which {!recover} salvages.
   Versions 1/2 were bare JSON; {!load}/{!recover} still accept them. *)
let checkpoint_kind = "szc-checkpoint"

let meta_to_json c =
  Json.Obj
    [
      ("version", Json.Int 3);
      ("base_seed", Json.of_int64 c.base_seed);
      ("runs", Json.Int c.runs);
      ("profile", Json.String c.profile_fp);
      ("config", Json.String c.config_desc);
      ("reference", opt_int c.reference);
    ]

let state_to_json (c : campaign) =
  Json.Obj
    [
      ("quarantined", Json.List (List.map Json.of_int64 c.quarantined));
      ("budget_cycles", opt_int c.budget_cycles);
      ("budget_fuel", opt_int c.budget_fuel);
    ]

let get_opt_int j name =
  match Json.member name j with
  | Some (Json.Int i) -> Ok (Some i)
  | Some Json.Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "checkpoint: bad %S" name)

let meta_of_json j =
  let get name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "checkpoint meta: bad or missing %S" name)
  in
  let ( let* ) = Result.bind in
  let* version = get "version" Json.to_int in
  if version <> 3 then
    Error (Printf.sprintf "checkpoint: unsupported container version %d" version)
  else
    let* base_seed = get "base_seed" Json.to_int64 in
    let* runs = get "runs" Json.to_int in
    let* profile_fp = get "profile" Json.to_str in
    let* config_desc = get "config" Json.to_str in
    let* reference = get_opt_int j "reference" in
    Ok
      {
        base_seed;
        runs;
        profile_fp;
        config_desc;
        records = [];
        quarantined = [];
        budget_cycles = None;
        budget_fuel = None;
        reference;
      }

let state_of_json j =
  let ( let* ) = Result.bind in
  let* quarantined_js =
    match Option.bind (Json.member "quarantined" j) Json.to_list with
    | Some l -> Ok l
    | None -> Error "checkpoint: bad state record"
  in
  let* quarantined =
    List.fold_left
      (fun acc x ->
        Result.bind acc (fun l ->
            match Json.to_int64 x with
            | Some s -> Ok (s :: l)
            | None -> Error "checkpoint: bad quarantined seed"))
      (Ok []) quarantined_js
    |> Result.map List.rev
  in
  let* budget_cycles = get_opt_int j "budget_cycles" in
  let* budget_fuel = get_opt_int j "budget_fuel" in
  Ok (quarantined, budget_cycles, budget_fuel)

(* Re-derive the quarantine list when the checkpoint's state record was
   lost to corruption. Every failed attempt seed, in run order then
   attempt order, first occurrence only — exactly the order
   [run_campaign] quarantined them in: a record with [retries = k] had
   attempts [0..k-1] fail, plus attempt [k] itself unless it [Done].
   Runs censored by the pool ([Worker_lost]/[Worker_hung]) quarantine
   nothing: their synthetic record never ran the retry loop, and any
   attempt seeds that failed before the worker died or wedged were
   lost with it — in the live campaign too, so deriving them here
   would *diverge* from the uninterrupted bytes. *)
let derive_quarantine ~base_seed ~runs records =
  let primary = Sample.seeds ~base_seed ~runs in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let add s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      out := s :: !out
    end
  in
  List.iter
    (fun r ->
      if r.run >= 0 && r.run < runs then begin
        let last_failed =
          match r.outcome with
          | Done _ -> r.retries - 1
          | Worker_lost | Worker_hung -> -1
          | _ -> r.retries
        in
        for k = 0 to last_failed do
          add (attempt_seed primary.(r.run) k)
        done
      end)
    records;
  List.rev !out

(* Rebuild a campaign from container records. [lenient] treats a
   malformed record as the start of the lost suffix (keeps the valid
   prefix) instead of failing, and tolerates a missing state record by
   re-deriving quarantine from the run records and leaving the budgets
   uncalibrated — resume then recalibrates them bit-exactly from the
   completed prefix. Returns the campaign plus whether state had to be
   reconstructed. *)
let campaign_of_records ~lenient pairs =
  let ( let* ) = Result.bind in
  match pairs with
  | ("meta", m) :: rest ->
      let* mj = Json.of_string m in
      let* base = meta_of_json mj in
      let rec go acc state = function
        | [] -> Ok (List.rev acc, state)
        | ("run", s) :: rest -> (
            let parsed =
              Result.bind (Json.of_string s) (fun j ->
                  match record_of_json j with
                  | Some r -> Ok r
                  | None -> Error "checkpoint: bad record")
            in
            match parsed with
            | Ok r -> go (r :: acc) state rest
            | Error e -> if lenient then Ok (List.rev acc, state) else Error e)
        | ("state", s) :: rest -> (
            match Result.bind (Json.of_string s) state_of_json with
            | Ok st -> go acc (Some st) rest
            | Error e -> if lenient then Ok (List.rev acc, state) else Error e)
        | (tag, _) :: rest ->
            if lenient then go acc state rest
            else Error (Printf.sprintf "checkpoint: unknown record tag %S" tag)
      in
      let* records, state = go [] None rest in
      let records = List.sort (fun a b -> compare a.run b.run) records in
      (match state with
      | Some (quarantined, budget_cycles, budget_fuel) ->
          Ok ({ base with records; quarantined; budget_cycles; budget_fuel }, false)
      | None ->
          if not lenient then Error "checkpoint: missing state record"
          else
            let quarantined =
              derive_quarantine ~base_seed:base.base_seed ~runs:base.runs records
            in
            Ok ({ base with records; quarantined }, true))
  | _ -> Error "checkpoint: missing meta record"

let save path c =
  Artifact.write_records path ~kind:checkpoint_kind
    (("meta", Json.to_string (meta_to_json c))
     :: List.map (fun r -> ("run", Json.to_string (record_to_json r))) c.records
    @ [ ("state", Json.to_string (state_to_json c)) ])

let load path =
  match Artifact.read_file path with
  | Error e -> Error e
  | Ok text ->
      if Artifact.is_container text then
        let s = Artifact.salvage_string text in
        match s.Artifact.error with
        | Some e -> Error e
        | None ->
            if s.Artifact.kind <> Some checkpoint_kind then
              Error "checkpoint: unexpected artifact kind"
            else
              Result.map fst
                (campaign_of_records ~lenient:false s.Artifact.records)
      else Result.bind (Json.of_string text) of_json

let recover path =
  match Artifact.read_file path with
  | Error e -> Error e
  | Ok text ->
      if not (Artifact.is_container text) then
        (* Legacy v1/v2 JSON: no checksums to salvage with, so this is
           all-or-nothing — same as strict load. *)
        Result.map (fun c -> (c, None)) (Result.bind (Json.of_string text) of_json)
      else
        let s = Artifact.salvage_string text in
        if s.Artifact.kind <> Some checkpoint_kind then
          Error
            (match s.Artifact.error with
            | Some e -> e
            | None -> "checkpoint: unexpected artifact kind")
        else
          Result.map
            (fun (c, reconstructed) ->
              let note =
                if s.Artifact.error = None && not reconstructed then None
                else
                  Some
                    (Printf.sprintf "salvaged %d of %d bytes%s%s"
                       s.Artifact.valid_bytes s.Artifact.total_bytes
                       (match s.Artifact.error with
                       | Some e -> ": " ^ e
                       | None -> "")
                       (if reconstructed then
                          "; supervisor state re-derived from run records"
                        else ""))
              in
              (c, note))
            (campaign_of_records ~lenient:true s.Artifact.records)

(* ------------------------------------------------------------------ *)
(* Campaign execution                                                  *)
(* ------------------------------------------------------------------ *)

(* The synthetic stream standing in for a checkpointed run on resume:
   the lane advances by the run's recorded cycles, so the post-resume
   part of the trace lines up with where the interrupted campaign left
   off, but the run's inner events (which happened in a previous
   process) are represented by a single "restored" span. *)
let restored_stream (r : record) =
  let args =
    [
      ("run", Json.Int r.run);
      Spans.seed_arg r.seed;
      ("retries", Json.Int r.retries);
      ("outcome", Json.String (stored_tag r.outcome));
    ]
  in
  let span_and_hw dur counters =
    [
      Event.Span { name = "restored"; cat = "run"; lane = 0; ts = 0; dur; args };
      Event.Counter
        {
          name = "hw";
          cat = "run";
          lane = 0;
          ts = dur;
          values = Hierarchy.counters_fields counters;
        };
    ]
  in
  match r.outcome with
  | Done c -> span_and_hw c.cycles c.counters
  | Trapped (_, Some pp) | Budget_exceeded pp | Invalid_result pp ->
      span_and_hw pp.Runtime.p_cycles pp.Runtime.p_counters
  | Trapped (_, None) | Worker_lost | Worker_hung ->
      [ Event.Instant { name = "restored"; cat = "run"; lane = 0; ts = 0; args } ]

let pool_event_args = function
  | Parallel.Worker_spawned { pid; tasks } ->
      ("worker-spawned", [ ("pid", Json.Int pid); ("tasks", Json.Int tasks) ])
  | Parallel.Worker_done { pid } -> ("worker-done", [ ("pid", Json.Int pid) ])
  | Parallel.Worker_died { pid; lost_task; respawned } ->
      ( "worker-died",
        [
          ("pid", Json.Int pid);
          ( "lost_task",
            match lost_task with Some i -> Json.Int i | None -> Json.Null );
          ("respawned", Json.Bool respawned);
        ] )
  | Parallel.Worker_hung { pid; lost_task; respawned } ->
      ( "worker-hung",
        [
          ("pid", Json.Int pid);
          ( "lost_task",
            match lost_task with Some i -> Json.Int i | None -> Json.Null );
          ("respawned", Json.Bool respawned);
        ] )
  | Parallel.Worker_spawn_failed { tasks } ->
      ("worker-spawn-failed", [ ("tasks", Json.Int tasks) ])

let run_campaign ?(policy = default_policy) ?(profile = Fault.none)
    ?(limits = Interp.default_limits) ?(jobs = 1) ?checkpoint ?(resume = false)
    ?on_record ?telemetry ?monitor ?(dispatch = Parallel.pool_dispatcher)
    ~config ~base_seed ~runs ~args p =
  if runs < 1 then raise (Mismatch "run_campaign: runs must be >= 1");
  let jobs = Stdlib.max 1 jobs in
  (* A wedged run never finishes and never traps; the only recovery is
     the pool watchdog SIGKILLing the worker around it, which needs a
     fork boundary. Refuse configurations where a wedge would hang the
     campaign forever. (The reference probe is injection-free, so it
     cannot wedge even under a wedge-armed profile.) *)
  if profile.Fault.wedge > 0.0 && jobs < 2 then
    raise
      (Mismatch
         "run_campaign: wedge-armed profiles need jobs >= 2 (hang recovery \
          requires a worker pool)");
  (* Captured before any fork: workers must agree with the parent on
     whether to produce events, whatever process executes the run. *)
  let tracing = telemetry <> None in
  let control name args =
    match telemetry with
    | Some tr -> Trace.control_instant tr ~args name
    | None -> ()
  in
  (* The monitor is a pure fold over records in run order; feeding it
     here (replayed checkpoint records, then delivered runs — both in
     run order) makes its state independent of worker count and of
     whether the campaign was interrupted. Each observation lands one
     "monitor" instant on the control lane. *)
  let monitor_observe (r : record) =
    match monitor with
    | None -> ()
    | Some m ->
        (match r.outcome with
        | Done c ->
            Monitor.observe_completed m ~cycles:c.cycles ~seconds:c.seconds
        | Trapped _ | Budget_exceeded _ | Invalid_result _ | Worker_lost
        | Worker_hung ->
            Monitor.observe_censored m);
        let s = Monitor.snapshot m in
        control "monitor"
          [
            ("run", Json.Int r.run);
            ("completed", Json.Int s.Monitor.completed);
            ("censored", Json.Int s.Monitor.censored);
            ( "verdict",
              Json.String (Monitor.verdict_to_string s.Monitor.verdict) );
          ]
  in
  let profile_fp = Fault.fingerprint profile in
  let config_desc = Config.describe config in
  let primary = Sample.seeds ~base_seed ~runs in
  let loaded =
    match (checkpoint, resume) with
    | Some path, true when Sys.file_exists path -> (
        (* Lenient load: a checkpoint corrupted by a crash or torn
           write resumes from its longest valid prefix instead of
           aborting the campaign. *)
        match recover path with
        | Error e -> raise (Mismatch ("checkpoint " ^ path ^ ": " ^ e))
        | Ok (c, note) ->
            if c.base_seed <> base_seed then
              raise (Mismatch "checkpoint belongs to a different base seed");
            if c.runs <> runs then
              raise (Mismatch "checkpoint belongs to a different run count");
            if c.profile_fp <> profile_fp then
              raise (Mismatch "checkpoint belongs to a different fault profile");
            if c.config_desc <> config_desc then
              raise (Mismatch "checkpoint belongs to a different configuration");
            (match note with
            | Some n ->
                control "checkpoint-salvaged" [ ("detail", Json.String n) ]
            | None -> ());
            Some c)
    | _ -> None
  in
  let records : record option array = Array.make runs None in
  (match loaded with
  | Some c ->
      List.iter
        (fun r -> if r.run >= 0 && r.run < runs then records.(r.run) <- Some r)
        c.records
  | None -> ());
  control "campaign-start"
    [
      ("runs", Json.Int runs);
      ("base_seed", Json.String (Int64.to_string base_seed));
      ("profile", Json.String profile_fp);
      ("config", Json.String config_desc);
      ("resumed", Json.Bool (loaded <> None));
    ];
  (* Checkpointed runs re-enter the trace as synthetic spans, in run
     order, so the resumed timeline is a consistent continuation. The
     monitor replays the same records in the same order, which is what
     makes its final verdict identical for an interrupted-then-resumed
     campaign and an uninterrupted one. *)
  Array.iteri
    (fun i r ->
      match r with
      | Some r ->
          (match telemetry with
          | Some tr -> Trace.add_run tr ~run:i (restored_stream r)
          | None -> ());
          monitor_observe r
      | None -> ())
    records;
  let quarantine : (int64, unit) Hashtbl.t = Hashtbl.create 64 in
  let quarantined = ref [] in
  let add_quarantine seed =
    if not (Hashtbl.mem quarantine seed) then begin
      Hashtbl.add quarantine seed ();
      quarantined := seed :: !quarantined
    end
  in
  (match loaded with
  | Some c -> List.iter add_quarantine c.quarantined
  | None -> ());
  let budget_cycles = ref (Option.bind loaded (fun c -> c.budget_cycles)) in
  let budget_fuel = ref (Option.bind loaded (fun c -> c.budget_fuel)) in
  (* Watchdog grace calibration: the longest wall-clock attempt seen in
     this process (reference probe, serial head) scaled by the policy
     margin. Per-run fuel is budget-capped, so no honest attempt can
     exceed the calibration maximum by anything like the margin; only a
     genuinely wedged worker goes silent that long. *)
  let max_wall = ref 0.0 in
  let observe_wall dt = if dt > !max_wall then max_wall := dt in
  let timed f =
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe_wall (Unix.gettimeofday () -. t0)) f
  in
  let hang_grace () =
    match policy.hang_grace with
    | Some g -> g
    | None ->
        if !max_wall > 0.0 then Stdlib.max 1.0 (policy.hang_margin *. !max_wall)
        else 60.0 (* resumed with nothing measured; conservative fallback *)
  in
  (* The reference value comes from one clean (injection-free) run; a
     campaign resumed from a checkpoint reuses the recorded decision so
     the continuation matches the uninterrupted campaign exactly. *)
  let reference =
    match loaded with
    | Some c -> c.reference
    | None ->
        let rec probe k =
          if k > policy.max_retries then None
          else
            match
              timed (fun () ->
                  Runtime.run ~limits ~config ~seed:(attempt_seed primary.(0) k)
                    p ~args)
            with
            | r -> Some r.Runtime.return_value
            | exception ((Stack_overflow | Assert_failure _) as fatal) ->
                raise fatal
            | exception _ -> probe (k + 1)
        in
        probe 0
  in
  control "reference-probe"
    [
      ( "value",
        match reference with Some v -> Json.Int v | None -> Json.Null );
    ];
  (* Budget calibration state: completed runs in run order feed the
     calibrator until it freezes. Resumed records re-feed it, which
     reproduces the budgets an uninterrupted campaign would have set. *)
  let calib_cycles = ref [] in
  let calib_fuel = ref [] in
  let calib_n = ref 0 in
  let feed_calibration (c : completed) =
    if !budget_cycles = None && !calib_n < policy.calibration_runs then begin
      calib_cycles := c.cycles :: !calib_cycles;
      calib_fuel := c.instructions :: !calib_fuel;
      incr calib_n;
      if !calib_n >= policy.calibration_runs then begin
        let scale xs =
          int_of_float
            (policy.budget_margin
            *. float_of_int (List.fold_left Stdlib.max 1 xs))
        in
        budget_cycles := Some (scale !calib_cycles);
        budget_fuel := Some (scale !calib_fuel)
      end
    end
  in
  (match loaded with
  | Some _ ->
      if !budget_cycles = None then
        Array.iter
          (function
            | Some { outcome = Done c; _ } -> feed_calibration c
            | _ -> ())
          records
  | None -> ());
  let campaign_so_far () =
    {
      base_seed;
      runs;
      profile_fp;
      config_desc;
      records =
        Array.to_list records |> List.filter_map Fun.id
        |> List.sort (fun a b -> compare a.run b.run);
      quarantined = List.rev !quarantined;
      budget_cycles = !budget_cycles;
      budget_fuel = !budget_fuel;
      reference;
    }
  in
  let finished = ref 0 in
  let maybe_checkpoint ~force =
    match checkpoint with
    | Some path when force || !finished mod Stdlib.max 1 policy.checkpoint_every = 0
      ->
        save path (campaign_so_far ());
        control "checkpoint" [ ("finished", Json.Int !finished) ]
    | _ -> ()
  in
  let effective_limits () =
    match !budget_fuel with
    | Some fuel ->
        {
          limits with
          Interp.max_instructions = Stdlib.min limits.Interp.max_instructions fuel;
        }
    | None -> limits
  in
  let execute seed =
    let plan = Injector.plan ~profile ~limits:(effective_limits ()) ~seed () in
    Outcome.run ~limits:plan.Injector.limits
      ?machine_factory:plan.Injector.machine_factory
      ~env_wrap:plan.Injector.env_wrap ?budget_cycles:!budget_cycles ?reference
      ~events:tracing ~config ~seed p ~args
  in
  let store_outcome = function
    | Outcome.Completed r ->
        Done
          {
            cycles = r.Runtime.cycles;
            seconds = r.Runtime.virtual_seconds;
            return_value = r.Runtime.return_value;
            instructions = r.Runtime.counters.Hierarchy.instructions;
            counters = r.Runtime.counters;
            epochs = r.Runtime.epochs;
            relocations = r.Runtime.relocations;
            adaptive_triggers = r.Runtime.adaptive_triggers;
            allocations = r.Runtime.heap_stats.Stz_alloc.Allocator.allocations;
            frees = r.Runtime.heap_stats.Stz_alloc.Allocator.frees;
          }
    | Outcome.Trapped (c, pp) -> Trapped (c, pp)
    | Outcome.Budget_exceeded r -> Budget_exceeded (Runtime.partial_of_result r)
    | Outcome.Invalid_result r -> Invalid_result (Runtime.partial_of_result r)
    | Outcome.Worker_lost -> Worker_lost
    | Outcome.Worker_hung -> Worker_hung
  in
  (* One supervised run: the bounded retry loop. Quarantine lookups see
     the global table as of the call (in a worker: as of the fork) plus
     this run's own failed attempts; the failed seeds come back with
     the record so the parent can merge them in run order. Cross-run
     quarantine hits require two splitmix streams to collide (~2^-64),
     which is what makes the parallel merge bit-identical to a serial
     campaign. *)
  let attempt_run i =
    let failed_seeds = ref [] in
    let streams = ref [] in
    let note k seed outcome =
      if tracing then
        streams :=
          Spans.of_outcome
            ~name:(if k = 0 then "run" else "retry")
            ~args:
              (("run", Json.Int i) :: Spans.seed_arg seed
              :: (if k > 0 then [ ("attempt", Json.Int k) ] else []))
            outcome
          :: !streams
    in
    let rec attempt k =
      (* Heartbeat: a multi-attempt task keeps resetting the watchdog
         clock, so only a single silent *attempt* — not a long retry
         loop — can trip it. No-op outside a forked worker. *)
      Parallel.beat ();
      let seed = attempt_seed primary.(i) k in
      let outcome =
        if Hashtbl.mem quarantine seed || List.mem seed !failed_seeds then
          (* Known-bad seed: counts as a failed attempt, not re-run. *)
          Outcome.Trapped (Fault.Unknown_trap, None)
        else execute seed
      in
      note k seed outcome;
      match outcome with
      | Outcome.Completed _ ->
          { run = i; seed; retries = k; outcome = store_outcome outcome }
      | failed ->
          failed_seeds := seed :: !failed_seeds;
          if k < policy.max_retries then attempt (k + 1)
          else { run = i; seed; retries = k; outcome = store_outcome failed }
    in
    let r = attempt 0 in
    (r, List.rev !failed_seeds, Spans.sequence (List.rev !streams))
  in
  (* All bookkeeping stays in the parent and happens in run order, so
     quarantine, calibration, on_record and checkpoints are identical
     whatever the worker count. *)
  let deliver i ((r : record), failed_seeds, events) =
    List.iter add_quarantine failed_seeds;
    (match telemetry with
    | Some tr -> Trace.add_run tr ~run:i events
    | None -> ());
    let unfrozen = !budget_cycles = None in
    (match r.outcome with Done c -> feed_calibration c | _ -> ());
    (if unfrozen then
       match !budget_cycles with
       | Some b ->
           control "budgets-frozen"
             [
               ("budget_cycles", Json.Int b);
               ( "budget_fuel",
                 match !budget_fuel with
                 | Some f -> Json.Int f
                 | None -> Json.Null );
             ]
       | None -> ());
    records.(i) <- Some r;
    incr finished;
    (* Monitor before [on_record] so a live status callback sees the
       estimator state that already includes this run. *)
    monitor_observe r;
    (match on_record with Some f -> f r | None -> ());
    maybe_checkpoint ~force:false
  in
  let pending = ref [] in
  for i = runs - 1 downto 0 do
    if records.(i) = None then pending := i :: !pending
  done;
  let on_pool_event =
    Option.map
      (fun tr e ->
        let name, args = pool_event_args e in
        Trace.harness_instant tr ~args name)
      telemetry
  in
  (* A censored run's synthetic payload: no seeds to quarantine, an
     instant in the trace. Used for tasks whose worker died or hung. *)
  let censored_payload i stored outcome =
    ( { run = i; seed = primary.(i); retries = 0; outcome = stored },
      [],
      if tracing then
        Spans.of_outcome ~name:"run"
          ~args:[ ("run", Json.Int i); Spans.seed_arg primary.(i) ]
          outcome
      else [] )
  in
  if jobs <= 1 then List.iter (fun i -> deliver i (attempt_run i)) !pending
  else begin
    (* Budget calibration is order-dependent — budgets freeze after the
       first [calibration_runs] completed runs and tighten the limits
       of every later run — so runs execute serially until the budgets
       are frozen; only the remainder fans out. Each serial run still
       crosses a fork boundary (a single-task pool under the watchdog),
       so a wedge during calibration is as survivable as one in the
       fan-out. *)
    let forked_attempt i =
      let out = ref Parallel.Lost in
      dispatch.Parallel.dispatch ?on_pool_event ~watchdog:(hang_grace ())
        ~jobs:1
        ~on_result:(fun _ r -> out := r)
        ~f:(fun _ -> attempt_run i)
        1;
      match !out with
      | Parallel.Value payload -> payload
      | Parallel.Lost -> censored_payload i Worker_lost Outcome.Worker_lost
      | Parallel.Hung -> censored_payload i Worker_hung Outcome.Worker_hung
    in
    let rec serial_head = function
      | i :: rest when !budget_cycles = None ->
          let t0 = Unix.gettimeofday () in
          let payload = forked_attempt i in
          (match payload with
          | { outcome = Worker_hung; _ }, _, _ -> ()
          | _ -> observe_wall (Unix.gettimeofday () -. t0));
          deliver i payload;
          serial_head rest
      | rest -> rest
    in
    let tasks = Array.of_list (serial_head !pending) in
    if Array.length tasks > 0 then begin
      (* Worker results arrive in completion order; [buffered] and
         [next_run] re-serialize them so delivery happens in run order
         — a mid-flight checkpoint therefore always holds a prefix of
         completed runs, exactly what a serial campaign interrupted at
         the same point would have written, and resume composes with
         in-flight workers without double-running anything. *)
      let buffered = Array.make runs None in
      let next_run = ref 0 in
      let advance () =
        let blocked = ref false in
        while (not !blocked) && !next_run < runs do
          match (records.(!next_run), buffered.(!next_run)) with
          | Some _, _ -> incr next_run
          | None, Some payload ->
              buffered.(!next_run) <- None;
              deliver !next_run payload;
              incr next_run
          | None, None -> blocked := true
        done
      in
      let on_result pos res =
        let i = tasks.(pos) in
        let payload =
          match res with
          | Parallel.Value record_seeds_events -> record_seeds_events
          | Parallel.Lost -> censored_payload i Worker_lost Outcome.Worker_lost
          | Parallel.Hung -> censored_payload i Worker_hung Outcome.Worker_hung
        in
        buffered.(i) <- Some payload;
        advance ()
      in
      dispatch.Parallel.dispatch ~on_result ?on_pool_event
        ~watchdog:(hang_grace ()) ~jobs
        ~f:(fun pos -> attempt_run tasks.(pos))
        (Array.length tasks)
    end
  end;
  let c = campaign_so_far () in
  (match checkpoint with Some path -> save path c | None -> ());
  (match monitor with
  | Some m ->
      control "monitor-verdict"
        [
          ("verdict", Json.String (Monitor.verdict_to_string (Monitor.advise m)));
          ("status", Json.String (Monitor.status_line m));
        ]
  | None -> ());
  (match telemetry with
  | Some tr ->
      let s = List.length (List.filter (fun r -> match r.outcome with Done _ -> true | _ -> false) c.records) in
      Trace.control_counter tr "campaign"
        ~values:
          [
            ("finished", List.length c.records);
            ("completed", s);
            ("quarantined", List.length c.quarantined);
          ]
  | None -> ());
  c

(* ------------------------------------------------------------------ *)
(* Derived views                                                       *)
(* ------------------------------------------------------------------ *)

let times c =
  c.records
  |> List.filter_map (fun r ->
         match r.outcome with Done d -> Some d.seconds | _ -> None)
  |> Array.of_list

let summarize c =
  let completed = ref 0 in
  let censored = ref 0 in
  let retried_runs = ref 0 in
  let total_retries = ref 0 in
  let budget_exceeded = ref 0 in
  let invalid = ref 0 in
  let worker_lost = ref 0 in
  let worker_hung = ref 0 in
  let class_counts = Hashtbl.create 8 in
  let max_retries =
    List.fold_left (fun acc r -> Stdlib.max acc r.retries) 0 c.records
  in
  let retry_histogram = Array.make (max_retries + 1) 0 in
  List.iter
    (fun r ->
      retry_histogram.(r.retries) <- retry_histogram.(r.retries) + 1;
      if r.retries > 0 then incr retried_runs;
      total_retries := !total_retries + r.retries;
      match r.outcome with
      | Done _ -> incr completed
      | Budget_exceeded _ ->
          incr censored;
          incr budget_exceeded
      | Invalid_result _ ->
          incr censored;
          incr invalid
      | Worker_lost ->
          incr censored;
          incr worker_lost
      | Worker_hung ->
          incr censored;
          incr worker_hung
      | Trapped (cls, _) ->
          incr censored;
          Hashtbl.replace class_counts cls
            (1 + Option.value ~default:0 (Hashtbl.find_opt class_counts cls)))
    c.records;
  {
    runs = c.runs;
    completed = !completed;
    censored = !censored;
    retried_runs = !retried_runs;
    total_retries = !total_retries;
    quarantined = List.length c.quarantined;
    budget_exceeded = !budget_exceeded;
    invalid = !invalid;
    worker_lost = !worker_lost;
    worker_hung = !worker_hung;
    by_class =
      List.map
        (fun cls ->
          (cls, Option.value ~default:0 (Hashtbl.find_opt class_counts cls)))
        Fault.all_classes;
    retry_histogram;
  }

let verdict ?alpha ~min_n a b =
  Experiment.compare_samples_gated ?alpha ~min_n (times a) (times b)
