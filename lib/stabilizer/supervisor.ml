module Fault = Stz_faults.Fault
module Injector = Stz_faults.Injector
module Interp = Stz_vm.Interp
module Splitmix = Stz_prng.Splitmix

type policy = {
  max_retries : int;
  calibration_runs : int;
  budget_margin : float;
  checkpoint_every : int;
}

let default_policy =
  { max_retries = 3; calibration_runs = 5; budget_margin = 8.0; checkpoint_every = 1 }

type completed = {
  cycles : int;
  seconds : float;
  return_value : int;
  instructions : int;
}

type stored_outcome =
  | Done of completed
  | Trapped of Fault.fault_class
  | Budget_exceeded
  | Invalid_result
  | Worker_lost

type record = {
  run : int;
  seed : int64;
  retries : int;
  outcome : stored_outcome;
}

type campaign = {
  base_seed : int64;
  runs : int;
  profile_fp : string;
  config_desc : string;
  records : record list;
  quarantined : int64 list;
  budget_cycles : int option;
  budget_fuel : int option;
  reference : int option;
}

type summary = {
  runs : int;
  completed : int;
  censored : int;
  retried_runs : int;
  total_retries : int;
  quarantined : int;
  budget_exceeded : int;
  invalid : int;
  worker_lost : int;
  by_class : (Fault.fault_class * int) list;
  retry_histogram : int array;
}

exception Mismatch of string

(* ------------------------------------------------------------------ *)
(* JSON checkpoint format                                              *)
(* ------------------------------------------------------------------ *)

let seconds_of_cycles cycles = float_of_int cycles /. 3.2e9

let record_to_json r =
  let base =
    [
      ("run", Json.Int r.run);
      ("seed", Json.of_int64 r.seed);
      ("retries", Json.Int r.retries);
      ("outcome", Json.String (match r.outcome with
        | Done _ -> "completed"
        | Trapped c -> Fault.class_to_string c
        | Budget_exceeded -> "budget-exceeded"
        | Invalid_result -> "invalid-result"
        | Worker_lost -> "worker-lost"));
    ]
  in
  match r.outcome with
  | Done c ->
      Json.Obj
        (base
        @ [
            ("cycles", Json.Int c.cycles);
            ("value", Json.Int c.return_value);
            ("instructions", Json.Int c.instructions);
          ])
  | _ -> Json.Obj base

let record_of_json j =
  let ( let* ) = Option.bind in
  let* run = Option.bind (Json.member "run" j) Json.to_int in
  let* seed = Option.bind (Json.member "seed" j) Json.to_int64 in
  let* retries = Option.bind (Json.member "retries" j) Json.to_int in
  let* tag = Option.bind (Json.member "outcome" j) Json.to_str in
  let* outcome =
    match tag with
    | "completed" ->
        let* cycles = Option.bind (Json.member "cycles" j) Json.to_int in
        let* return_value = Option.bind (Json.member "value" j) Json.to_int in
        let* instructions =
          Option.bind (Json.member "instructions" j) Json.to_int
        in
        Some
          (Done
             { cycles; seconds = seconds_of_cycles cycles; return_value; instructions })
    | "budget-exceeded" -> Some Budget_exceeded
    | "invalid-result" -> Some Invalid_result
    | "worker-lost" -> Some Worker_lost
    | s -> Option.map (fun c -> Trapped c) (Fault.class_of_string s)
  in
  Some { run; seed; retries; outcome }

let opt_int = function None -> Json.Null | Some i -> Json.Int i

let to_json c =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("base_seed", Json.of_int64 c.base_seed);
      ("runs", Json.Int c.runs);
      ("profile", Json.String c.profile_fp);
      ("config", Json.String c.config_desc);
      ("reference", opt_int c.reference);
      ("budget_cycles", opt_int c.budget_cycles);
      ("budget_fuel", opt_int c.budget_fuel);
      ("quarantined", Json.List (List.map Json.of_int64 c.quarantined));
      ("records", Json.List (List.map record_to_json c.records));
    ]

let of_json j =
  let get name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "checkpoint: bad or missing %S" name)
  in
  let get_opt name =
    match Json.member name j with
    | Some (Json.Int i) -> Ok (Some i)
    | Some Json.Null | None -> Ok None
    | Some _ -> Error (Printf.sprintf "checkpoint: bad %S" name)
  in
  let ( let* ) = Result.bind in
  let* base_seed = get "base_seed" Json.to_int64 in
  let* runs = get "runs" Json.to_int in
  let* profile_fp = get "profile" Json.to_str in
  let* config_desc = get "config" Json.to_str in
  let* reference = get_opt "reference" in
  let* budget_cycles = get_opt "budget_cycles" in
  let* budget_fuel = get_opt "budget_fuel" in
  let* quarantined_js = get "quarantined" Json.to_list in
  let* records_js = get "records" Json.to_list in
  let* quarantined =
    List.fold_left
      (fun acc x ->
        Result.bind acc (fun l ->
            match Json.to_int64 x with
            | Some s -> Ok (s :: l)
            | None -> Error "checkpoint: bad quarantined seed"))
      (Ok []) quarantined_js
    |> Result.map List.rev
  in
  let* records =
    List.fold_left
      (fun acc x ->
        Result.bind acc (fun l ->
            match record_of_json x with
            | Some r -> Ok (r :: l)
            | None -> Error "checkpoint: bad record"))
      (Ok []) records_js
    |> Result.map List.rev
  in
  Ok
    {
      base_seed;
      runs;
      profile_fp;
      config_desc;
      records;
      quarantined;
      budget_cycles;
      budget_fuel;
      reference;
    }

let save path c =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (to_json c));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let load path =
  match
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  with
  | exception Sys_error e -> Error e
  | text -> Result.bind (Json.of_string text) of_json

(* ------------------------------------------------------------------ *)
(* Campaign execution                                                  *)
(* ------------------------------------------------------------------ *)

(* Retry seeds are derived from the run's primary seed, not drawn from
   the campaign stream, so a retry never shifts the seeds of later runs
   — the property that makes checkpoint/resume exact. *)
let attempt_seed primary k =
  if k = 0 then primary
  else begin
    let g = Splitmix.create primary in
    let s = ref primary in
    for _ = 1 to k do
      s := Splitmix.split g
    done;
    !s
  end

let run_campaign ?(policy = default_policy) ?(profile = Fault.none)
    ?(limits = Interp.default_limits) ?(jobs = 1) ?checkpoint ?(resume = false)
    ?on_record ~config ~base_seed ~runs ~args p =
  if runs < 1 then raise (Mismatch "run_campaign: runs must be >= 1");
  let jobs = Stdlib.max 1 jobs in
  let profile_fp = Fault.fingerprint profile in
  let config_desc = Config.describe config in
  let primary = Sample.seeds ~base_seed ~runs in
  let loaded =
    match (checkpoint, resume) with
    | Some path, true when Sys.file_exists path -> (
        match load path with
        | Error e -> raise (Mismatch ("checkpoint " ^ path ^ ": " ^ e))
        | Ok c ->
            if c.base_seed <> base_seed then
              raise (Mismatch "checkpoint belongs to a different base seed");
            if c.runs <> runs then
              raise (Mismatch "checkpoint belongs to a different run count");
            if c.profile_fp <> profile_fp then
              raise (Mismatch "checkpoint belongs to a different fault profile");
            if c.config_desc <> config_desc then
              raise (Mismatch "checkpoint belongs to a different configuration");
            Some c)
    | _ -> None
  in
  let records : record option array = Array.make runs None in
  (match loaded with
  | Some c ->
      List.iter
        (fun r -> if r.run >= 0 && r.run < runs then records.(r.run) <- Some r)
        c.records
  | None -> ());
  let quarantine : (int64, unit) Hashtbl.t = Hashtbl.create 64 in
  let quarantined = ref [] in
  let add_quarantine seed =
    if not (Hashtbl.mem quarantine seed) then begin
      Hashtbl.add quarantine seed ();
      quarantined := seed :: !quarantined
    end
  in
  (match loaded with
  | Some c -> List.iter add_quarantine c.quarantined
  | None -> ());
  let budget_cycles = ref (Option.bind loaded (fun c -> c.budget_cycles)) in
  let budget_fuel = ref (Option.bind loaded (fun c -> c.budget_fuel)) in
  (* The reference value comes from one clean (injection-free) run; a
     campaign resumed from a checkpoint reuses the recorded decision so
     the continuation matches the uninterrupted campaign exactly. *)
  let reference =
    match loaded with
    | Some c -> c.reference
    | None ->
        let rec probe k =
          if k > policy.max_retries then None
          else
            match
              Runtime.run ~limits ~config ~seed:(attempt_seed primary.(0) k) p
                ~args
            with
            | r -> Some r.Runtime.return_value
            | exception ((Stack_overflow | Assert_failure _) as fatal) ->
                raise fatal
            | exception _ -> probe (k + 1)
        in
        probe 0
  in
  (* Budget calibration state: completed runs in run order feed the
     calibrator until it freezes. Resumed records re-feed it, which
     reproduces the budgets an uninterrupted campaign would have set. *)
  let calib_cycles = ref [] in
  let calib_fuel = ref [] in
  let calib_n = ref 0 in
  let feed_calibration (c : completed) =
    if !budget_cycles = None && !calib_n < policy.calibration_runs then begin
      calib_cycles := c.cycles :: !calib_cycles;
      calib_fuel := c.instructions :: !calib_fuel;
      incr calib_n;
      if !calib_n >= policy.calibration_runs then begin
        let scale xs =
          int_of_float
            (policy.budget_margin
            *. float_of_int (List.fold_left Stdlib.max 1 xs))
        in
        budget_cycles := Some (scale !calib_cycles);
        budget_fuel := Some (scale !calib_fuel)
      end
    end
  in
  (match loaded with
  | Some _ ->
      if !budget_cycles = None then
        Array.iter
          (function
            | Some { outcome = Done c; _ } -> feed_calibration c
            | _ -> ())
          records
  | None -> ());
  let campaign_so_far () =
    {
      base_seed;
      runs;
      profile_fp;
      config_desc;
      records =
        Array.to_list records |> List.filter_map Fun.id
        |> List.sort (fun a b -> compare a.run b.run);
      quarantined = List.rev !quarantined;
      budget_cycles = !budget_cycles;
      budget_fuel = !budget_fuel;
      reference;
    }
  in
  let finished = ref 0 in
  let maybe_checkpoint ~force =
    match checkpoint with
    | Some path when force || !finished mod Stdlib.max 1 policy.checkpoint_every = 0
      ->
        save path (campaign_so_far ())
    | _ -> ()
  in
  let effective_limits () =
    match !budget_fuel with
    | Some fuel ->
        {
          limits with
          Interp.max_instructions = Stdlib.min limits.Interp.max_instructions fuel;
        }
    | None -> limits
  in
  let execute seed =
    let plan = Injector.plan ~profile ~limits:(effective_limits ()) ~seed () in
    Outcome.run ~limits:plan.Injector.limits
      ?machine_factory:plan.Injector.machine_factory
      ~env_wrap:plan.Injector.env_wrap ?budget_cycles:!budget_cycles ?reference
      ~config ~seed p ~args
  in
  let store_outcome = function
    | Outcome.Completed r ->
        Done
          {
            cycles = r.Runtime.cycles;
            seconds = r.Runtime.virtual_seconds;
            return_value = r.Runtime.return_value;
            instructions = r.Runtime.counters.Stz_machine.Hierarchy.instructions;
          }
    | Outcome.Trapped c -> Trapped c
    | Outcome.Budget_exceeded -> Budget_exceeded
    | Outcome.Invalid_result -> Invalid_result
    | Outcome.Worker_lost -> Worker_lost
  in
  (* One supervised run: the bounded retry loop. Quarantine lookups see
     the global table as of the call (in a worker: as of the fork) plus
     this run's own failed attempts; the failed seeds come back with
     the record so the parent can merge them in run order. Cross-run
     quarantine hits require two splitmix streams to collide (~2^-64),
     which is what makes the parallel merge bit-identical to a serial
     campaign. *)
  let attempt_run i =
    let failed_seeds = ref [] in
    let rec attempt k =
      let seed = attempt_seed primary.(i) k in
      let outcome =
        if Hashtbl.mem quarantine seed || List.mem seed !failed_seeds then
          (* Known-bad seed: counts as a failed attempt, not re-run. *)
          Outcome.Trapped Fault.Unknown_trap
        else execute seed
      in
      match outcome with
      | Outcome.Completed _ ->
          { run = i; seed; retries = k; outcome = store_outcome outcome }
      | failed ->
          failed_seeds := seed :: !failed_seeds;
          if k < policy.max_retries then attempt (k + 1)
          else { run = i; seed; retries = k; outcome = store_outcome failed }
    in
    let r = attempt 0 in
    (r, List.rev !failed_seeds)
  in
  (* All bookkeeping stays in the parent and happens in run order, so
     quarantine, calibration, on_record and checkpoints are identical
     whatever the worker count. *)
  let deliver i ((r : record), failed_seeds) =
    List.iter add_quarantine failed_seeds;
    (match r.outcome with Done c -> feed_calibration c | _ -> ());
    records.(i) <- Some r;
    incr finished;
    (match on_record with Some f -> f r | None -> ());
    maybe_checkpoint ~force:false
  in
  let pending = ref [] in
  for i = runs - 1 downto 0 do
    if records.(i) = None then pending := i :: !pending
  done;
  if jobs <= 1 then List.iter (fun i -> deliver i (attempt_run i)) !pending
  else begin
    (* Budget calibration is order-dependent — budgets freeze after the
       first [calibration_runs] completed runs and tighten the limits
       of every later run — so runs execute serially until the budgets
       are frozen; only the remainder fans out. *)
    let rec serial_head = function
      | i :: rest when !budget_cycles = None ->
          deliver i (attempt_run i);
          serial_head rest
      | rest -> rest
    in
    let tasks = Array.of_list (serial_head !pending) in
    if Array.length tasks > 0 then begin
      (* Worker results arrive in completion order; [buffered] and
         [next_run] re-serialize them so delivery happens in run order
         — a mid-flight checkpoint therefore always holds a prefix of
         completed runs, exactly what a serial campaign interrupted at
         the same point would have written, and resume composes with
         in-flight workers without double-running anything. *)
      let buffered = Array.make runs None in
      let next_run = ref 0 in
      let advance () =
        let blocked = ref false in
        while (not !blocked) && !next_run < runs do
          match (records.(!next_run), buffered.(!next_run)) with
          | Some _, _ -> incr next_run
          | None, Some payload ->
              buffered.(!next_run) <- None;
              deliver !next_run payload;
              incr next_run
          | None, None -> blocked := true
        done
      in
      let on_result pos res =
        let i = tasks.(pos) in
        let payload =
          match res with
          | Parallel.Value record_and_seeds -> record_and_seeds
          | Parallel.Lost ->
              ( { run = i; seed = primary.(i); retries = 0; outcome = Worker_lost },
                [] )
        in
        buffered.(i) <- Some payload;
        advance ()
      in
      ignore
        (Parallel.map ~on_result ~jobs
           ~f:(fun pos -> attempt_run tasks.(pos))
           (Array.length tasks))
    end
  end;
  let c = campaign_so_far () in
  (match checkpoint with Some path -> save path c | None -> ());
  c

(* ------------------------------------------------------------------ *)
(* Derived views                                                       *)
(* ------------------------------------------------------------------ *)

let times c =
  c.records
  |> List.filter_map (fun r ->
         match r.outcome with Done d -> Some d.seconds | _ -> None)
  |> Array.of_list

let summarize c =
  let completed = ref 0 in
  let censored = ref 0 in
  let retried_runs = ref 0 in
  let total_retries = ref 0 in
  let budget_exceeded = ref 0 in
  let invalid = ref 0 in
  let worker_lost = ref 0 in
  let class_counts = Hashtbl.create 8 in
  let max_retries =
    List.fold_left (fun acc r -> Stdlib.max acc r.retries) 0 c.records
  in
  let retry_histogram = Array.make (max_retries + 1) 0 in
  List.iter
    (fun r ->
      retry_histogram.(r.retries) <- retry_histogram.(r.retries) + 1;
      if r.retries > 0 then incr retried_runs;
      total_retries := !total_retries + r.retries;
      match r.outcome with
      | Done _ -> incr completed
      | Budget_exceeded ->
          incr censored;
          incr budget_exceeded
      | Invalid_result ->
          incr censored;
          incr invalid
      | Worker_lost ->
          incr censored;
          incr worker_lost
      | Trapped cls ->
          incr censored;
          Hashtbl.replace class_counts cls
            (1 + Option.value ~default:0 (Hashtbl.find_opt class_counts cls)))
    c.records;
  {
    runs = c.runs;
    completed = !completed;
    censored = !censored;
    retried_runs = !retried_runs;
    total_retries = !total_retries;
    quarantined = List.length c.quarantined;
    budget_exceeded = !budget_exceeded;
    invalid = !invalid;
    worker_lost = !worker_lost;
    by_class =
      List.map
        (fun cls ->
          (cls, Option.value ~default:0 (Hashtbl.find_opt class_counts cls)))
        Fault.all_classes;
    retry_histogram;
  }

let verdict ?alpha ~min_n a b =
  Experiment.compare_samples_gated ?alpha ~min_n (times a) (times b)
