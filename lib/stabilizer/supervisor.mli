(** Supervised, resumable experiment campaigns. A campaign is [runs]
    supervised runs of one program under one configuration: every run is
    classified through {!Outcome.run_outcome} instead of aborting the
    loop, failed runs are retried a bounded number of times with fresh
    derived seeds, seeds that produced failures are quarantined, cycle
    and fuel budgets are calibrated from the first successful runs, and
    the whole campaign state checkpoints to a durable checksummed
    {!Stz_store.Artifact} container so an interrupted sweep resumes
    exactly where it stopped — with a final sample bit-identical to an
    uninterrupted campaign's (same seeds, same cycle counts). A
    checkpoint corrupted by a crash or torn write resumes from its
    longest valid record prefix ({!recover}); even the supervisor state
    record (quarantine list, calibrated budgets) is reconstructed
    bit-exactly from the surviving run records when it is lost.

    Never raises on run failures: under any fault profile the campaign
    completes and reports what happened. *)

type policy = {
  max_retries : int;  (** retry attempts per run beyond the first *)
  calibration_runs : int;
      (** successful runs observed before budgets are frozen *)
  budget_margin : float;
      (** budgets = margin × the calibration maximum (cycles / fuel) *)
  checkpoint_every : int;  (** checkpoint after every [k] finished runs *)
  hang_margin : float;
      (** watchdog grace = margin × the longest wall-clock attempt seen
          during calibration (reference probe + serial head); a worker
          silent longer than that is declared hung *)
  hang_grace : float option;
      (** fixed watchdog grace in seconds, overriding the calibrated
          one; [None] (the default) calibrates *)
}

val default_policy : policy

(** Compact, checkpointable payload of a completed run. [seconds] is
    recomputed from [cycles] on load, so resumed times are bit-identical. *)
type completed = {
  cycles : int;
  seconds : float;
  return_value : int;
  instructions : int;
  counters : Stz_machine.Hierarchy.counters;
      (** the full hardware-counter sample ([counters.cycles = cycles],
          [counters.instructions = instructions]) *)
  epochs : int;
  relocations : int;
  adaptive_triggers : int;
  allocations : int;
  frees : int;
}

type stored_outcome =
  | Done of completed
  | Trapped of Stz_faults.Fault.fault_class * Runtime.partial option
      (** counters at the trap, when the run measured anything *)
  | Budget_exceeded of Runtime.partial
  | Invalid_result of Runtime.partial
  | Worker_lost
      (** the parallel worker executing the run died before reporting —
          see {!Outcome.run_outcome} *)
  | Worker_hung
      (** the parallel worker executing the run went silent past the
          watchdog grace and was SIGKILLed — see {!Outcome.run_outcome} *)

(** Compact outcome tag, same vocabulary as {!Outcome.tag}. *)
val stored_tag : stored_outcome -> string

type record = {
  run : int;
  seed : int64;  (** seed of the final attempt *)
  retries : int;
  outcome : stored_outcome;  (** censored unless [Done] *)
}

type campaign = {
  base_seed : int64;
  runs : int;
  profile_fp : string;  (** {!Stz_faults.Fault.fingerprint} *)
  config_desc : string;  (** {!Config.describe} *)
  records : record list;  (** ascending run order *)
  quarantined : int64 list;  (** every seed that produced a failure *)
  budget_cycles : int option;  (** calibrated; [None] until frozen *)
  budget_fuel : int option;
  reference : int option;  (** expected return value, from a clean run *)
}

type summary = {
  runs : int;
  completed : int;
  censored : int;
  retried_runs : int;  (** runs that needed at least one retry *)
  total_retries : int;
  quarantined : int;
  budget_exceeded : int;
  invalid : int;
  worker_lost : int;  (** runs censored because their worker died *)
  worker_hung : int;  (** runs censored because their worker hung *)
  by_class : (Stz_faults.Fault.fault_class * int) list;
      (** final-outcome trap tallies, every class listed *)
  retry_histogram : int array;
      (** [histogram.(k)] = finished runs that took [k] retries *)
}

(** Raised only for unusable campaign setups: [runs < 1]; a
    [~checkpoint] file that exists but belongs to a different campaign
    (other seed, run count, fault profile or configuration) or is
    unrecoverably corrupt while [~resume:true]; or a wedge-armed fault
    profile with [jobs < 2] (a wedge can only be survived by the pool
    watchdog, which needs a fork boundary). Run failures never
    raise. *)
exception Mismatch of string

(** [run_campaign ~config ~base_seed ~runs ~args p] executes the
    campaign. [profile] injects faults via {!Stz_faults.Injector}
    (default {!Stz_faults.Fault.none}). With [checkpoint], progress is
    written to that JSON file as runs finish; with [resume] also set,
    an existing file's finished runs are loaded and skipped, and
    calibrated budgets, the reference value and the quarantine list are
    restored so the continuation behaves exactly as the uninterrupted
    campaign would. [on_record] observes each finished run (useful for
    progress display — and for tests that kill a campaign mid-flight).

    [jobs] (default 1) executes runs on a {!Parallel} fork pool. Runs
    are serialized until the cycle/fuel budgets freeze (they change the
    limits of later runs), then the remainder fans out; results are
    merged, quarantined, reported through [on_record] and checkpointed
    strictly in run order, so samples, checkpoints and outcome CSVs are
    bit-identical to a serial campaign's for any worker count. A worker
    that dies censors exactly the run it was executing as
    {!Worker_lost}; the rest of its task stripe is re-spawned. A worker
    that goes silent past the watchdog grace (calibrated per
    [policy.hang_margin], overridable via [policy.hang_grace]) is
    SIGKILLed and its run censored as {!Worker_hung} — results it
    finished before wedging are salvaged from its pipe first, so hang
    recovery costs exactly the wedged run and the campaign stays
    bit-identical across worker counts. With [jobs > 1] even the serial
    calibration head runs across a fork boundary, so a wedge during
    calibration is equally survivable.

    [telemetry] streams the campaign into a {!Stz_telemetry.Trace}:
    every run contributes its attempt spans (produced worker-side and
    shipped back with the result, then merged in run order, so the
    deterministic stream is byte-identical for any [jobs]); reference
    probe, budget freeze and checkpoint writes land on the control
    lane; physical pool lifecycle goes to the trace's wall-clocked
    harness stream. On resume, checkpointed runs re-enter the trace as
    synthetic ["restored"] spans so the timeline stays consistent.

    [monitor] receives every finished run as a streaming observation
    ({!Stz_monitor.Monitor.observe_completed} /
    [observe_censored]). Records are fed strictly in run order —
    checkpointed runs first (on resume), then delivered runs — so the
    monitor's estimator state, and therefore its stopping verdict, is a
    pure function of the record sequence: byte-identical for any [jobs]
    and for interrupted-then-resumed versus uninterrupted campaigns.
    Each observation emits a ["monitor"] control-lane instant and the
    campaign ends with a ["monitor-verdict"] instant when [telemetry]
    is also armed. The monitor is updated before [on_record] fires, so
    a progress callback can print {!Stz_monitor.Monitor.status_line}
    reflecting the run it was called for.

    [dispatch] (default {!Parallel.pool_dispatcher}) decides how task
    batches reach the fork pool on the [jobs > 1] path — the campaign
    daemon passes {!Parallel.batched} so an external fair-share
    scheduler can meter run slots. Run-order delivery, checkpointing
    and monitoring are all downstream of the merge, so any conforming
    dispatcher yields byte-identical artifacts. *)
val run_campaign :
  ?policy:policy ->
  ?profile:Stz_faults.Fault.profile ->
  ?limits:Stz_vm.Interp.limits ->
  ?jobs:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?on_record:(record -> unit) ->
  ?telemetry:Stz_telemetry.Trace.t ->
  ?monitor:Stz_monitor.Monitor.t ->
  ?dispatch:Parallel.dispatcher ->
  config:Config.t ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Ir.program ->
  campaign

(** Times (virtual seconds) of completed runs, in run order — the
    campaign's sample. *)
val times : campaign -> float array

val summarize : campaign -> summary

(** Min-N-gated comparison of two campaigns' samples (§6 procedure with
    the censoring gate in front). *)
val verdict :
  ?alpha:float -> min_n:int -> campaign -> campaign -> Experiment.gated

(** JSON round-trip (the legacy v1/v2 checkpoint file format; current
    checkpoints are {!Stz_store.Artifact} containers — see {!save}). *)
val to_json : campaign -> Json.t

val of_json : Json.t -> (campaign, string) result

(** Checkpoint IO. [save] writes a version-3 checksummed
    {!Stz_store.Artifact} container, durably: temp file, fsync of file
    and parent directory, then rename — a crash at any point leaves
    either the old checkpoint or the new one, never a torn file. *)
val save : string -> campaign -> unit

(** Strict load: a container must parse completely (header, every
    record checksum, meta and state present); a file that does not
    start with the artifact magic is parsed as a legacy v1/v2 JSON
    checkpoint. Any corruption is an [Error]. *)
val load : string -> (campaign, string) result

(** Lenient load: salvages the longest valid record prefix of a
    corrupted container. A missing state record (quarantine, budgets)
    is reconstructed from the surviving run records — bit-exactly, so a
    resume from the salvaged prefix matches an uninterrupted campaign.
    Returns the campaign plus [Some note] describing what was salvaged,
    or [None] when the file was intact. [Error] only when not even the
    meta record survives (or the file is missing/unreadable). *)
val recover : string -> (campaign * string option, string) result
