module Fault = Stz_faults.Fault
module Interp = Stz_vm.Interp

type run_outcome =
  | Completed of Runtime.result
  | Trapped of Fault.fault_class
  | Budget_exceeded
  | Invalid_result
  | Worker_lost

let classify_exn = function
  | Interp.Fuel_exhausted -> Fault.Fuel_starvation
  | Interp.Call_depth_exceeded -> Fault.Depth_blowout
  | Fault.Injected_oom | Stdlib.Out_of_memory -> Fault.Alloc_failure
  | _ -> Fault.Unknown_trap

let check ?budget_cycles ?reference (r : Runtime.result) =
  match budget_cycles with
  | Some budget when r.Runtime.cycles > budget -> Budget_exceeded
  | _ -> (
      match reference with
      | Some v when r.Runtime.return_value <> v -> Invalid_result
      | _ -> Completed r)

let run ?limits ?machine_factory ?env_wrap ?budget_cycles ?reference ~config
    ~seed p ~args =
  match Runtime.run ?limits ?machine_factory ?env_wrap ~config ~seed p ~args with
  | r -> check ?budget_cycles ?reference r
  | exception ((Stack_overflow | Assert_failure _) as fatal) -> raise fatal
  | exception e -> Trapped (classify_exn e)

let tag = function
  | Completed _ -> "completed"
  | Trapped c -> Fault.class_to_string c
  | Budget_exceeded -> "budget-exceeded"
  | Invalid_result -> "invalid-result"
  | Worker_lost -> "worker-lost"

let to_string = function
  | Completed r ->
      Printf.sprintf "completed (%d cycles, value %d)" r.Runtime.cycles
        r.Runtime.return_value
  | o -> tag o
