module Fault = Stz_faults.Fault
module Interp = Stz_vm.Interp

type run_outcome =
  | Completed of Runtime.result
  | Trapped of Fault.fault_class * Runtime.partial option
  | Budget_exceeded of Runtime.result
  | Invalid_result of Runtime.result
  | Worker_lost
  | Worker_hung

let rec classify_exn = function
  | Interp.Fuel_exhausted -> Fault.Fuel_starvation
  | Interp.Call_depth_exceeded -> Fault.Depth_blowout
  | Fault.Injected_oom | Stdlib.Out_of_memory -> Fault.Alloc_failure
  | Runtime.Trap { trap; _ } -> classify_exn trap
  | _ -> Fault.Unknown_trap

let check ?budget_cycles ?reference (r : Runtime.result) =
  match budget_cycles with
  | Some budget when r.Runtime.cycles > budget -> Budget_exceeded r
  | _ -> (
      match reference with
      | Some v when r.Runtime.return_value <> v -> Invalid_result r
      | _ -> Completed r)

let run ?limits ?machine_factory ?env_wrap ?budget_cycles ?reference ?events
    ?profiled ~config ~seed p ~args =
  match
    Runtime.run ?limits ?profile:profiled ?events ?machine_factory ?env_wrap
      ~config ~seed p ~args
  with
  | r -> check ?budget_cycles ?reference r
  | exception ((Stack_overflow | Assert_failure _) as fatal) -> raise fatal
  | exception Runtime.Trap { trap; partial; events = _ } ->
      Trapped (classify_exn trap, Some partial)
  | exception e -> Trapped (classify_exn e, None)

let partial = function
  | Completed r | Budget_exceeded r | Invalid_result r ->
      Some (Runtime.partial_of_result r)
  | Trapped (_, p) -> p
  | Worker_lost | Worker_hung -> None

let tag = function
  | Completed _ -> "completed"
  | Trapped (c, _) -> Fault.class_to_string c
  | Budget_exceeded _ -> "budget-exceeded"
  | Invalid_result _ -> "invalid-result"
  | Worker_lost -> "worker-lost"
  | Worker_hung -> "worker-hung"

let to_string = function
  | Completed r ->
      Printf.sprintf "completed (%d cycles, value %d)" r.Runtime.cycles
        r.Runtime.return_value
  | o -> tag o
