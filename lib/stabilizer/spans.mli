(** Builders turning classified run outcomes into run-local telemetry
    streams — shared by the sampling layer and the campaign supervisor
    so both produce identical events for identical outcomes (the
    byte-identity guarantee lives or dies on this). *)

val seed_arg : int64 -> string * Stz_telemetry.Json.t

(** [of_outcome ~name outcome] is the outcome as a run-local stream
    (lane 0, clock starting at 0): a [name] span spanning the measured
    cycles with the runtime's own events nested inside and a closing
    ["hw"] counter sample, or a zero-extent instant for outcomes that
    measured nothing. [args] are prepended to the span's arguments. *)
val of_outcome :
  name:string ->
  ?args:Stz_telemetry.Event.args ->
  Outcome.run_outcome ->
  Stz_telemetry.Event.t list

(** Concatenate run-local streams end-to-end (each shifted past the
    extent of its predecessors) into one run-local stream. *)
val sequence : Stz_telemetry.Event.t list list -> Stz_telemetry.Event.t list
