module H = Stz_machine.Hierarchy
module Fault = Stz_faults.Fault
module Metrics = Stz_telemetry.Metrics
module Trace = Stz_telemetry.Trace

let add_counters m prefix (c : H.counters) =
  List.iter (fun (k, v) -> Metrics.add m (prefix ^ "." ^ k) v) (H.counters_fields c)

let add_partial m (pp : Runtime.partial) =
  Metrics.add m "censored.cycles" pp.Runtime.p_cycles;
  Metrics.add m "censored.instructions" pp.Runtime.p_counters.H.instructions

let of_campaign (c : Supervisor.campaign) =
  let m = Metrics.create () in
  let s = Supervisor.summarize c in
  Metrics.set m "campaign.runs" s.Supervisor.runs;
  Metrics.set m "campaign.completed" s.Supervisor.completed;
  Metrics.set m "campaign.censored" s.Supervisor.censored;
  Metrics.set m "campaign.retried_runs" s.Supervisor.retried_runs;
  Metrics.set m "campaign.total_retries" s.Supervisor.total_retries;
  Metrics.set m "campaign.quarantined" s.Supervisor.quarantined;
  Metrics.set m "campaign.budget_exceeded" s.Supervisor.budget_exceeded;
  Metrics.set m "campaign.invalid_result" s.Supervisor.invalid;
  Metrics.set m "campaign.worker_lost" s.Supervisor.worker_lost;
  Metrics.set m "campaign.worker_hung" s.Supervisor.worker_hung;
  List.iter
    (fun (cls, n) ->
      Metrics.set m ("fault." ^ Fault.class_to_string cls) n)
    s.Supervisor.by_class;
  List.iter
    (fun (r : Supervisor.record) ->
      match r.Supervisor.outcome with
      | Supervisor.Done d ->
          add_counters m "counters" d.Supervisor.counters;
          Metrics.add m "runtime.epochs" d.Supervisor.epochs;
          Metrics.add m "runtime.relocations" d.Supervisor.relocations;
          Metrics.add m "runtime.adaptive_triggers" d.Supervisor.adaptive_triggers;
          Metrics.add m "heap.allocations" d.Supervisor.allocations;
          Metrics.add m "heap.frees" d.Supervisor.frees
      | Supervisor.Trapped (_, Some pp)
      | Supervisor.Budget_exceeded pp
      | Supervisor.Invalid_result pp -> add_partial m pp
      | Supervisor.Trapped (_, None)
      | Supervisor.Worker_lost
      | Supervisor.Worker_hung -> ())
    c.Supervisor.records;
  m

let of_sample (s : Sample.t) =
  let m = Metrics.create () in
  Metrics.set m "sample.runs" (Array.length s.Sample.outcomes);
  Metrics.set m "sample.completed" (Array.length s.Sample.results);
  Metrics.set m "sample.censored" (List.length s.Sample.failures);
  Array.iter
    (fun (r : Runtime.result) ->
      add_counters m "counters" r.Runtime.counters;
      Metrics.add m "runtime.epochs" r.Runtime.epochs;
      Metrics.add m "runtime.relocations" r.Runtime.relocations;
      Metrics.add m "runtime.adaptive_triggers" r.Runtime.adaptive_triggers;
      Metrics.add m "heap.allocations"
        r.Runtime.heap_stats.Stz_alloc.Allocator.allocations;
      Metrics.add m "heap.frees" r.Runtime.heap_stats.Stz_alloc.Allocator.frees)
    s.Sample.results;
  List.iter
    (fun (f : Sample.failure) ->
      (match f.Sample.kind with
      | Sample.Faulted cls ->
          Metrics.add m ("fault." ^ Fault.class_to_string cls) 1
      | Sample.Budget_exceeded -> Metrics.add m "fault.budget_exceeded" 1
      | Sample.Invalid_result -> Metrics.add m "fault.invalid_result" 1
      | Sample.Worker_lost -> Metrics.add m "fault.worker_lost" 1
      | Sample.Worker_hung -> Metrics.add m "fault.worker_hung" 1);
      match f.Sample.at_censoring with
      | Some pp -> add_partial m pp
      | None -> ())
    s.Sample.failures;
  m

let trace_of_outcomes ?lanes outcomes =
  let tr = Trace.create ?lanes () in
  Array.iteri
    (fun i (seed, outcome) ->
      Trace.add_run tr ~run:i
        (Spans.of_outcome ~name:"run"
           ~args:[ ("run", Stz_telemetry.Json.Int i); Spans.seed_arg seed ]
           outcome))
    outcomes;
  tr
