(* The JSON module moved into stz_telemetry (the telemetry library sits
   below this one and needs it for trace export); re-exported here so
   [Stabilizer.Json] remains the checkpoint serialization entry point. *)
include Stz_telemetry.Json
