module Event = Stz_telemetry.Event
module H = Stz_machine.Hierarchy
module Fault = Stz_faults.Fault

let seed_arg seed = ("seed", Json.String (Int64.to_string seed))

(* One classified outcome as a run-local stream (lane 0, clock from 0):
   a span covering the measured cycles — the full result for completed
   and gate-censored runs, the partial for traps — with the run's own
   runtime events nested inside, closed by a hardware-counter sample.
   Outcomes that measured nothing (lost worker, quarantine hit)
   collapse to a zero-extent instant. *)
let of_outcome ~name ?(args = []) outcome =
  let args = args @ [ ("outcome", Json.String (Outcome.tag outcome)) ] in
  match outcome with
  | Outcome.Completed r | Outcome.Budget_exceeded r | Outcome.Invalid_result r
    ->
      let args = args @ [ ("value", Json.Int r.Runtime.return_value) ] in
      (Event.Span
         { name; cat = "run"; lane = 0; ts = 0; dur = r.Runtime.cycles; args }
      :: r.Runtime.events)
      @ [
          Event.Counter
            {
              name = "hw";
              cat = "run";
              lane = 0;
              ts = r.Runtime.cycles;
              values = H.counters_fields r.Runtime.counters;
            };
        ]
  | Outcome.Trapped (_, Some pp) ->
      [
        Event.Span
          { name; cat = "run"; lane = 0; ts = 0; dur = pp.Runtime.p_cycles; args };
        Event.Counter
          {
            name = "hw";
            cat = "run";
            lane = 0;
            ts = pp.Runtime.p_cycles;
            values = H.counters_fields pp.Runtime.p_counters;
          };
      ]
  | Outcome.Trapped (_, None) | Outcome.Worker_lost | Outcome.Worker_hung ->
      [ Event.Instant { name; cat = "run"; lane = 0; ts = 0; args } ]

(* Concatenate run-local streams end-to-end: each stream is shifted past
   the extent of everything before it, so an attempt sequence reads as
   consecutive spans on one lane. *)
let sequence streams =
  let _, rev =
    List.fold_left
      (fun (off, acc) stream ->
        let acc =
          List.fold_left
            (fun acc e -> Event.shift ~lane:0 ~by:off e :: acc)
            acc stream
        in
        (off + Event.extent stream, acc))
      (0, []) streams
  in
  List.rev rev
