module Ledger = Stz_store.Ledger
module Welford = Stz_monitor.Welford
module Effect = Stz_stats.Effect
module Power = Stz_stats.Power

let fingerprint ~bench ~opt ~scale (c : Supervisor.campaign) =
  Printf.sprintf "%s|%s|%h|%s|%s" bench
    (Stz_vm.Opt.level_to_string opt)
    scale c.Supervisor.config_desc c.Supervisor.profile_fp

let entry_of_campaign ?(verdict = "-") ~label ~fingerprint
    (c : Supervisor.campaign) =
  let w = Welford.create () in
  List.iter
    (fun (r : Supervisor.record) ->
      match r.Supervisor.outcome with
      | Supervisor.Done d -> Welford.add w d.Supervisor.seconds
      | _ -> ())
    c.Supervisor.records;
  let completed = Welford.count w in
  {
    Ledger.label;
    fingerprint;
    base_seed = c.Supervisor.base_seed;
    runs = c.Supervisor.runs;
    completed;
    censored = List.length c.Supervisor.records - completed;
    mean = Welford.mean w;
    sd = Welford.std_dev w;
    min = Welford.min w;
    max = Welford.max w;
    skewness = Welford.skewness w;
    kurtosis = Welford.kurtosis w;
    detectable_effect =
      (if completed < 1 then 0.0 else Power.detectable_effect ~n:completed ());
    verdict;
  }

type decision = No_regression | Regression | Improvement | Not_comparable of string

type comparison = {
  baseline_seq : int;
  latest_seq : int;
  d : float;
  ci_low : float;
  ci_high : float;
  confidence : float;
  ratio : float;
  same_fingerprint : bool;
  decision : decision;
}

let compare_entries ?(confidence = 0.95) ?(min_effect = 0.2) ?(min_n = 3)
    ~baseline:(baseline_seq, (b : Ledger.entry))
    ~latest:(latest_seq, (l : Ledger.entry)) () =
  let moments (e : Ledger.entry) =
    { Effect.n = e.Ledger.completed; mean = e.Ledger.mean; sd = e.Ledger.sd }
  in
  (* Positive d = latest slower (larger mean time). *)
  let d, ci_low, ci_high =
    Effect.cohen_d_ci_moments ~confidence (moments l) (moments b)
  in
  let decision =
    if l.Ledger.completed < min_n || b.Ledger.completed < min_n then
      Not_comparable
        (Printf.sprintf "need %d completed runs per side (have %d vs %d)"
           min_n l.Ledger.completed b.Ledger.completed)
    else if ci_low > 0.0 && d >= min_effect then Regression
    else if ci_high < 0.0 && -.d >= min_effect then Improvement
    else No_regression
  in
  {
    baseline_seq;
    latest_seq;
    d;
    ci_low;
    ci_high;
    confidence;
    ratio =
      (if b.Ledger.mean = 0.0 then 0.0 else l.Ledger.mean /. b.Ledger.mean);
    same_fingerprint = l.Ledger.fingerprint = b.Ledger.fingerprint;
    decision;
  }

let describe c =
  let verdict =
    match c.decision with
    | Regression -> "REGRESSION"
    | Improvement -> "improvement"
    | No_regression -> "no regression"
    | Not_comparable why -> "insufficient data: " ^ why
  in
  Printf.sprintf
    "entry %d vs baseline %d%s: time ratio %.4f, effect d = %.3f, %.0f%% CI \
     [%.3f, %.3f] -> %s"
    c.latest_seq c.baseline_seq
    (if c.same_fingerprint then "" else " (different configuration)")
    c.ratio c.d
    (100.0 *. c.confidence)
    c.ci_low c.ci_high verdict
