(** Re-export of {!Stz_telemetry.Json}, which is where the JSON value
    type, emitter and parser now live — telemetry sits below this
    library and shares them for trace export. *)

include module type of Stz_telemetry.Json
