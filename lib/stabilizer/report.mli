(** Plain-text and CSV rendering of samples and comparisons, for piping
    experiment output into external analysis (R, gnuplot, spreadsheets). *)

(** CSV of one sample set: header ["run,seconds,cycles"]. *)
val csv_of_sample : Sample.t -> string

(** CSV of several labelled time series, long format:
    ["label,run,seconds"]. *)
val csv_of_series : (string * float array) list -> string

(** Campaign health on one line, e.g.
    ["runs 30/34, 3 retried (5 retries), 4 quarantined seeds, 1
     budget-exceeded, 0 invalid, 2 fuel-starvation, 1 alloc-failure,
     power(d=0.50)=0.46, detectable d=0.74"]. The trailing power clause
    ({!Stz_stats.Power} at the completed-run count) is omitted when no
    run completed. *)
val campaign_line : Supervisor.summary -> string

(** Long-format CSV of every run outcome of a campaign, for external
    analysis. Header:
    ["run,seed,retries,outcome,cycles,seconds,value,l1i_misses,l1d_misses,l2_misses,l3_misses,itlb_misses,dtlb_misses,branch_mispredictions,epochs,relocations"]
    — the first seven columns unchanged from earlier versions, the
    hardware-counter and randomization columns appended after [value].
    Censored runs with counters-at-censoring fill [cycles] and the
    counter columns (leaving [seconds]/[value] empty); runs that
    measured nothing leave every numeric field empty. When at least one
    run completed, two ['#']-prefixed footer comment lines state the
    achieved power at d = 0.5 and the detectable effect at 0.8 power
    for the completed-run count. *)
val csv_of_campaign : Supervisor.campaign -> string

(** Five-number summary plus mean/sd on one line. *)
val summary_line : float array -> string

(** Histogram of the samples as ASCII bars, [bins] rows. *)
val ascii_histogram : ?bins:int -> ?width:int -> float array -> string
