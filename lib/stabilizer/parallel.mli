(** Fork-based worker pool for embarrassingly parallel, seed-determined
    task arrays (the shape of a STABILIZER campaign: every run is a pure
    function of its precomputed seed and shares no mutable state).

    [map ~jobs ~f n] evaluates [f i] for every [i] in [0..n-1] across
    [jobs] forked Unix processes and returns the results merged in task
    order, so the output is independent of worker count and completion
    order. Tasks are striped statically (worker [j] gets [j], [j+jobs],
    …) and each worker streams [(index, value)] pairs back over its own
    pipe with [Marshal], so values must be closure-free data.

    Worker death is not an error: when a worker exits (crash, kill,
    nonzero status) before reporting all of its tasks, the task it was
    executing — the earliest unreported index of its stripe — is
    recorded as {!Lost} and a replacement worker is forked for the rest
    of the stripe. A task whose [f] raises likewise costs exactly that
    task. The pool itself never raises on worker failure.

    With [jobs <= 1] (or [n <= 1]) everything runs in-process, no forks,
    which is the reference semantics the parallel path must reproduce
    bit-for-bit. *)

(** One task's fate: the computed value, or lost with the worker that
    was executing it. *)
type 'a result = Value of 'a | Lost

(** Physical pool lifecycle, observed from the parent. These facts are
    wall-clock nondeterministic (which pid, when, whether a respawn
    happened) — telemetry records them on the segregated harness
    stream, never in the deterministic trace. Not emitted on the
    in-process ([jobs <= 1]) path, which forks nothing. *)
type pool_event =
  | Worker_spawned of { pid : int; tasks : int }
  | Worker_done of { pid : int }  (** clean exit, stripe fully reported *)
  | Worker_died of { pid : int; lost_task : int option; respawned : bool }

(** [map ?on_result ?on_pool_event ~jobs ~f n] — see the module
    description. [on_result] observes each task's result in *arrival*
    order (callers needing task order buffer and reorder themselves);
    it runs in the parent, so it may touch shared state.
    [on_pool_event] likewise runs in the parent and observes worker
    spawn/exit/death. [jobs] is clamped to [1..n]. *)
val map :
  ?on_result:(int -> 'a result -> unit) ->
  ?on_pool_event:(pool_event -> unit) ->
  jobs:int ->
  f:(int -> 'a) ->
  int ->
  'a result array
