(** Fork-based worker pool for embarrassingly parallel, seed-determined
    task arrays (the shape of a STABILIZER campaign: every run is a pure
    function of its precomputed seed and shares no mutable state).

    [map ~jobs ~f n] evaluates [f i] for every [i] in [0..n-1] across
    [jobs] forked Unix processes and returns the results merged in task
    order, so the output is independent of worker count and completion
    order. Tasks are striped statically (worker [j] gets [j], [j+jobs],
    …) and each worker streams [(index, value)] pairs back over its own
    pipe with [Marshal], so values must be closure-free data.

    Worker death is not an error: when a worker exits (crash, kill,
    nonzero status) before reporting all of its tasks, the task it was
    executing — the earliest unreported index of its stripe — is
    recorded as {!Lost} and a replacement worker is forked for the rest
    of the stripe. A task whose [f] raises likewise costs exactly that
    task. The pool itself never raises on worker failure.

    Worker {e silence} is recoverable too, when a [watchdog] grace is
    given: each worker heartbeats at every task start (and [f] can beat
    more finely via {!beat}); a worker with unreported tasks that has
    been silent longer than the grace is SIGKILLed, any results it
    finished but had not yet been read are salvaged from its pipe, the
    task it was stuck on is recorded as {!Hung}, and the rest of its
    stripe respawns. The pool's event loop always uses a finite select
    timeout, so it can never itself block forever on a wedged worker.

    With [jobs <= 1] and no [watchdog], everything runs in-process, no
    forks — the reference semantics the parallel path must reproduce
    bit-for-bit. Passing a [watchdog] forces forking even at
    [jobs = 1], because hang detection requires a killable process
    boundary around the task. *)

(** One task's fate: the computed value; lost with the worker that died
    executing it; or censored by the watchdog after its worker hung. *)
type 'a result = Value of 'a | Lost | Hung

(** Physical pool lifecycle, observed from the parent. These facts are
    wall-clock nondeterministic (which pid, when, whether a respawn
    happened) — telemetry records them on the segregated harness
    stream, never in the deterministic trace. Not emitted on the
    in-process ([jobs <= 1], no watchdog) path, which forks nothing. *)
type pool_event =
  | Worker_spawned of { pid : int; tasks : int }
  | Worker_done of { pid : int }  (** clean exit, stripe fully reported *)
  | Worker_died of { pid : int; lost_task : int option; respawned : bool }
  | Worker_hung of { pid : int; lost_task : int option; respawned : bool }
      (** watchdog SIGKILLed a silent worker; [lost_task = None] means
          every result was salvaged from the pipe and nothing was
          censored *)
  | Worker_spawn_failed of { tasks : int }
      (** [Unix.fork] kept failing with [EAGAIN]/[ENOMEM] through the
          whole bounded-backoff retry budget; the stripe's [tasks]
          remaining tasks were censored as {!Lost} and the pool carried
          on without the worker *)

(** Heartbeat hook for task bodies: records "this worker is alive and
    making progress" against the watchdog clock. No-op outside a forked
    worker (parent process, in-process path), so callers may invoke it
    unconditionally — e.g. the supervisor beats at every retry attempt
    so a long multi-attempt task is not mistaken for a hang. *)
val beat : unit -> unit

(** [map ?on_result ?on_pool_event ?watchdog ~jobs ~f n] — see the
    module description. [on_result] observes each task's result in
    *arrival* order (callers needing task order buffer and reorder
    themselves); it runs in the parent, so it may touch shared state.
    [on_pool_event] likewise runs in the parent and observes worker
    spawn/exit/death/hang. [watchdog] is the hang grace in seconds: a
    worker silent for longer while tasks are outstanding is killed and
    its in-flight task censored as {!Hung}; omitted means hangs are
    never declared (and [jobs <= 1] stays in-process). [jobs] is
    clamped to [1..n]. *)
val map :
  ?on_result:(int -> 'a result -> unit) ->
  ?on_pool_event:(pool_event -> unit) ->
  ?watchdog:float ->
  jobs:int ->
  f:(int -> 'a) ->
  int ->
  'a result array

(** {1 Dispatchers}

    A dispatcher abstracts {e how} a task array gets executed so an
    external scheduler (the campaign daemon) can interpose on worker
    allocation without the supervisor knowing. The contract: every task
    index in [0..n-1] is eventually reported through [on_result]
    exactly once (as [Value], [Lost], or [Hung]), in any order. *)

type dispatcher = {
  dispatch :
    'a.
    ?on_result:(int -> 'a result -> unit) ->
    ?on_pool_event:(pool_event -> unit) ->
    ?watchdog:float ->
    jobs:int ->
    f:(int -> 'a) ->
    int ->
    unit;
}

(** The default dispatcher: one {!map} call over the whole array. *)
val pool_dispatcher : dispatcher

(** [batched ~acquire ~release] — a dispatcher driven by an external
    slot scheduler. Tasks run in index order in batches: each batch
    first calls [acquire wanted] (blocking until the scheduler grants
    [1..wanted] slots; an exception aborts the dispatch with all prior
    batches fully delivered), runs that many consecutive tasks on a
    fork pool sized to the grant, then calls [release granted]. Because
    callers merge results by task index, the batch partition is
    unobservable in the output — a daemon can multiplex many campaigns
    onto one run budget without disturbing any campaign's bytes. The
    [jobs] argument to [dispatch] is ignored (the grant decides). *)
val batched : acquire:(int -> int) -> release:(int -> unit) -> dispatcher

(** Test hook: force the next [n] [Unix.fork] calls in {!map} to fail
    with [EAGAIN], exercising the spawn retry/backoff/censor path.
    Decremented per injected failure; normally [0]. *)
val forced_fork_failures : int ref
