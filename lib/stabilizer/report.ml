module Desc = Stz_stats.Desc
module Power = Stz_stats.Power

let csv_of_sample (s : Sample.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "run,seconds,cycles\n";
  Array.iteri
    (fun i t -> Buffer.add_string buf (Printf.sprintf "%d,%.9f,%d\n" i t s.Sample.cycles.(i)))
    s.Sample.times;
  Buffer.contents buf

let csv_of_series series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "label,run,seconds\n";
  List.iter
    (fun (label, times) ->
      Array.iteri
        (fun i t -> Buffer.add_string buf (Printf.sprintf "%s,%d,%.9f\n" label i t))
        times)
    series;
  Buffer.contents buf

(* Power of the collected sample at Cohen's conventional medium effect
   (d = 0.5), and the smallest effect detectable at the conventional
   0.8 power — §2.3's "how many runs do I need?" answered for the runs
   actually kept. *)
let power_part completed =
  if completed < 1 then ""
  else
    Printf.sprintf ", power(d=0.50)=%.2f, detectable d=%.2f"
      (Power.two_sample ~effect:0.5 ~n:completed ())
      (Power.detectable_effect ~n:completed ())

let campaign_line (s : Supervisor.summary) =
  let faults =
    List.filter_map
      (fun (cls, n) ->
        if n > 0 then
          Some (Printf.sprintf "%d %s" n (Stz_faults.Fault.class_to_string cls))
        else None)
      s.Supervisor.by_class
  in
  let faults_part =
    match faults with [] -> "" | l -> ", " ^ String.concat ", " l
  in
  Printf.sprintf
    "runs %d/%d, %d retried (%d retries), %d quarantined seed%s, %d \
     budget-exceeded, %d invalid%s%s%s"
    s.Supervisor.completed s.Supervisor.runs s.Supervisor.retried_runs
    s.Supervisor.total_retries s.Supervisor.quarantined
    (if s.Supervisor.quarantined = 1 then "" else "s")
    s.Supervisor.budget_exceeded s.Supervisor.invalid
    ((if s.Supervisor.worker_lost > 0 then
        Printf.sprintf ", %d worker-lost" s.Supervisor.worker_lost
      else "")
    ^
    if s.Supervisor.worker_hung > 0 then
      Printf.sprintf ", %d worker-hung" s.Supervisor.worker_hung
    else "")
    faults_part
    (power_part s.Supervisor.completed)

let csv_of_campaign (c : Supervisor.campaign) =
  let module H = Stz_machine.Hierarchy in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "run,seed,retries,outcome,cycles,seconds,value,l1i_misses,l1d_misses,l2_misses,l3_misses,itlb_misses,dtlb_misses,branch_mispredictions,epochs,relocations\n";
  let counter_cols (k : H.counters) epochs relocations =
    Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%d" k.H.l1i_misses k.H.l1d_misses
      k.H.l2_misses k.H.l3_misses k.H.itlb_misses k.H.dtlb_misses
      k.H.branch_mispredictions epochs relocations
  in
  List.iter
    (fun (r : Supervisor.record) ->
      let tag = Supervisor.stored_tag r.Supervisor.outcome in
      match r.Supervisor.outcome with
      | Supervisor.Done d ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%Ld,%d,%s,%d,%.9f,%d,%s\n" r.Supervisor.run
               r.Supervisor.seed r.Supervisor.retries tag d.Supervisor.cycles
               d.Supervisor.seconds d.Supervisor.return_value
               (counter_cols d.Supervisor.counters d.Supervisor.epochs
                  d.Supervisor.relocations))
      | Supervisor.Trapped (_, Some pp)
      | Supervisor.Budget_exceeded pp
      | Supervisor.Invalid_result pp ->
          (* Censored runs keep their counters-at-censoring (cycles
             too), only seconds/value stay empty: the run never produced
             a valid time or value, but the machine state is real. *)
          Buffer.add_string buf
            (Printf.sprintf "%d,%Ld,%d,%s,%d,,,%s\n" r.Supervisor.run
               r.Supervisor.seed r.Supervisor.retries tag pp.Runtime.p_cycles
               (counter_cols pp.Runtime.p_counters pp.Runtime.p_epochs
                  pp.Runtime.p_relocations))
      | Supervisor.Trapped (_, None)
      | Supervisor.Worker_lost
      | Supervisor.Worker_hung ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%Ld,%d,%s,,,,,,,,,,,,\n" r.Supervisor.run
               r.Supervisor.seed r.Supervisor.retries tag))
    c.Supervisor.records;
  (* Footer comments ('#'-prefixed, ignored by CSV readers configured
     for them): power of the collected sample, so an exported campaign
     carries its own "was N enough?" answer. Deterministic — a pure
     function of the completed-run count. *)
  let completed =
    List.length
      (List.filter
         (fun (r : Supervisor.record) ->
           match r.Supervisor.outcome with Supervisor.Done _ -> true | _ -> false)
         c.Supervisor.records)
  in
  if completed >= 1 then begin
    Buffer.add_string buf
      (Printf.sprintf "# power(d=0.50) at n=%d per group: %.6f\n" completed
         (Stz_stats.Power.two_sample ~effect:0.5 ~n:completed ()));
    Buffer.add_string buf
      (Printf.sprintf "# detectable effect at power 0.80: d=%.6f\n"
         (Stz_stats.Power.detectable_effect ~n:completed ()))
  end;
  Buffer.contents buf

let summary_line xs =
  Printf.sprintf
    "n=%d min=%.6f q1=%.6f median=%.6f q3=%.6f max=%.6f mean=%.6f sd=%.6f"
    (Array.length xs) (Desc.min xs) (Desc.quantile xs 0.25) (Desc.median xs)
    (Desc.quantile xs 0.75) (Desc.max xs) (Desc.mean xs)
    (if Array.length xs >= 2 then Desc.std_dev xs else 0.0)

let ascii_histogram ?(bins = 10) ?(width = 50) xs =
  if Array.length xs = 0 then invalid_arg "Report.ascii_histogram: empty";
  if bins < 1 then invalid_arg "Report.ascii_histogram: bins must be >= 1";
  let lo = Desc.min xs and hi = Desc.max xs in
  let span = if hi > lo then hi -. lo else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = Stdlib.min (bins - 1) (int_of_float ((x -. lo) /. span *. float_of_int bins)) in
      counts.(b) <- counts.(b) + 1)
    xs;
  let peak = Array.fold_left Stdlib.max 1 counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun b c ->
      let from = lo +. (span *. float_of_int b /. float_of_int bins) in
      let bar = String.make (c * width / peak) '#' in
      Buffer.add_string buf (Printf.sprintf "%12.6f | %-*s %d\n" from width bar c))
    counts;
  Buffer.contents buf
