(** Aggregation of campaigns and samples into the telemetry layer's
    registries and traces. All rollups are integer sums over run-order
    data, so for a fixed seed the snapshot bytes are identical however
    the runs were scheduled.

    Metric key schema:
    - [campaign.*] / [sample.*] — run population tallies (runs,
      completed, censored, retries, quarantine);
    - [fault.<class>] — censored-run counts per final fault class;
    - [counters.<field>] — hardware-counter totals over *completed*
      runs (one key per {!Stz_machine.Hierarchy.counters} field);
    - [censored.cycles] / [censored.instructions] — what censored runs
      had measured when cut off, kept apart from [counters.*] so the
      completed-run sums stay interpretable;
    - [runtime.epochs] / [runtime.relocations] /
      [runtime.adaptive_triggers], [heap.allocations] / [heap.frees] —
      randomization-machinery totals over completed runs. *)

val of_campaign : Supervisor.campaign -> Stz_telemetry.Metrics.t

val of_sample : Sample.t -> Stz_telemetry.Metrics.t

(** Assemble a per-run outcome stream (as produced by
    {!Sample.collect_outcomes}, run order) into a campaign trace:
    run [i] becomes a ["run"] span on lane [1 + i mod lanes]. *)
val trace_of_outcomes :
  ?lanes:int -> (int64 * Outcome.run_outcome) array -> Stz_telemetry.Trace.t
