type 'a result = Value of 'a | Lost

type pool_event =
  | Worker_spawned of { pid : int; tasks : int }
  | Worker_done of { pid : int }
  | Worker_died of { pid : int; lost_task : int option; respawned : bool }

type worker = {
  pid : int;
  fd : Unix.file_descr;
  mutable pending : int list;  (* task indices still unreported, in order *)
}

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

(* Returns false on EOF before [len] bytes arrived. *)
let read_exact fd buf pos len =
  let rec go pos len =
    if len = 0 then true
    else
      match restart_on_eintr (fun () -> Unix.read fd buf pos len) with
      | 0 -> false
      | k -> go (pos + k) (len - k)
  in
  go pos len

(* One marshalled message, or None on EOF / truncation (worker died
   mid-write; the partial payload is discarded). *)
let read_message fd =
  let header = Bytes.create Marshal.header_size in
  if not (read_exact fd header 0 Marshal.header_size) then None
  else
    let data_len = Marshal.data_size header 0 in
    let buf = Bytes.create (Marshal.header_size + data_len) in
    Bytes.blit header 0 buf 0 Marshal.header_size;
    if not (read_exact fd buf Marshal.header_size data_len) then None
    else Some (Marshal.from_bytes buf 0)

let write_exact fd buf =
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then
      let k = restart_on_eintr (fun () -> Unix.write fd buf pos (len - pos)) in
      go (pos + k)
  in
  go 0

(* The child never returns: it streams (index, f index) pairs and
   _exits without flushing the parent's inherited stdio buffers (a
   plain [exit] would run at_exit and print them twice). A raising [f]
   ends the stream early; the parent charges exactly that task. *)
let spawn f indices =
  (* Anything buffered before the fork would otherwise be inherited,
     and duplicated if the child's libc flushes it. *)
  flush stdout;
  flush stderr;
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      (try
         List.iter
           (fun i ->
             let v = f i in
             write_exact w (Marshal.to_bytes (i, v) []))
           indices
       with _ -> ());
      (try Unix.close w with Unix.Unix_error _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close w;
      { pid; fd = r; pending = indices }

let reap w =
  (try Unix.close w.fd with Unix.Unix_error _ -> ());
  try ignore (restart_on_eintr (fun () -> Unix.waitpid [] w.pid))
  with Unix.Unix_error _ -> ()

let map ?on_result ?on_pool_event ~jobs ~f n =
  let notify i r = match on_result with Some g -> g i r | None -> () in
  let pool_notify e = match on_pool_event with Some g -> g e | None -> () in
  if n < 0 then invalid_arg "Parallel.map: negative task count";
  let jobs = Stdlib.max 1 (Stdlib.min jobs n) in
  if jobs <= 1 then
    Array.init n (fun i ->
        let r = Value (f i) in
        notify i r;
        r)
  else begin
    let results = Array.make n Lost in
    let stripe j =
      List.filter (fun i -> i mod jobs = j) (List.init n Fun.id)
    in
    let spawn_noted f indices =
      let w = spawn f indices in
      pool_notify (Worker_spawned { pid = w.pid; tasks = List.length indices });
      w
    in
    let workers = ref (List.init jobs (fun j -> spawn_noted f (stripe j))) in
    (* If the caller's [on_result] raises (checkpoint write failure, a
       test killing the campaign mid-flight), don't leave children
       blocked on a pipe nobody reads. *)
    let kill_all () =
      List.iter
        (fun w ->
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap w)
        !workers;
      workers := []
    in
    try
      while !workers <> [] do
      let fds = List.map (fun w -> w.fd) !workers in
      let ready, _, _ =
        restart_on_eintr (fun () -> Unix.select fds [] [] (-1.0))
      in
      List.iter
        (fun fd ->
          match List.find_opt (fun w -> w.fd = fd) !workers with
          | None -> () (* already reaped in this round *)
          | Some w -> (
              match read_message fd with
              | Some (i, v) ->
                  results.(i) <- Value v;
                  w.pending <- List.filter (fun j -> j <> i) w.pending;
                  notify i (Value v)
              | None ->
                  (* EOF: clean completion when nothing is pending;
                     otherwise the worker died executing the earliest
                     unreported task of its stripe. *)
                  reap w;
                  workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
                  (match w.pending with
                  | [] -> pool_notify (Worker_done { pid = w.pid })
                  | lost :: rest ->
                      pool_notify
                        (Worker_died
                           {
                             pid = w.pid;
                             lost_task = Some lost;
                             respawned = rest <> [];
                           });
                      results.(lost) <- Lost;
                      notify lost Lost;
                      if rest <> [] then workers := spawn_noted f rest :: !workers)))
        ready
      done;
      results
    with e ->
      kill_all ();
      raise e
  end
