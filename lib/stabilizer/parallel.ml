type 'a result = Value of 'a | Lost | Hung

type pool_event =
  | Worker_spawned of { pid : int; tasks : int }
  | Worker_done of { pid : int }
  | Worker_died of { pid : int; lost_task : int option; respawned : bool }
  | Worker_hung of { pid : int; lost_task : int option; respawned : bool }

(* Wire protocol, child -> parent. [Beat] carries the index of the task
   the worker is currently executing. Its payload never contains a value
   of the result type, so marshalling it at [unit msg] in {!beat} and
   reading it back at ['a msg] in the parent is representation-safe. *)
type 'a msg = Beat of int | Done of int * 'a

type worker = {
  pid : int;
  fd : Unix.file_descr;
  mutable pending : int list;  (* task indices still unreported, in order *)
  mutable last_beat : float;  (* wall clock of the last message received *)
}

(* How long one select waits before the watchdog gets a chance to look
   at the clock. Also bounds how stale [last_beat] comparisons can be. *)
let tick = 0.25

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

(* Returns false on EOF before [len] bytes arrived. *)
let read_exact fd buf pos len =
  let rec go pos len =
    if len = 0 then true
    else
      match restart_on_eintr (fun () -> Unix.read fd buf pos len) with
      | 0 -> false
      | k -> go (pos + k) (len - k)
  in
  go pos len

(* One marshalled message, or None on EOF / truncation (worker died
   mid-write; the partial payload is discarded). *)
let read_message fd =
  let header = Bytes.create Marshal.header_size in
  if not (read_exact fd header 0 Marshal.header_size) then None
  else
    let data_len = Marshal.data_size header 0 in
    let buf = Bytes.create (Marshal.header_size + data_len) in
    Bytes.blit header 0 buf 0 Marshal.header_size;
    if not (read_exact fd buf Marshal.header_size data_len) then None
    else Some (Marshal.from_bytes buf 0)

let write_exact fd buf =
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then
      let k = restart_on_eintr (fun () -> Unix.write fd buf pos (len - pos)) in
      go (pos + k)
  in
  go 0

(* Set inside a forked worker, never in the parent: [beat] is a no-op
   on the in-process path and in the pool's parent process, so callers
   (the supervisor heartbeats at every attempt start) can call it
   unconditionally. *)
let beat_state : (Unix.file_descr * int ref) option ref = ref None

let beat () =
  match !beat_state with
  | None -> ()
  | Some (fd, task) ->
      write_exact fd (Marshal.to_bytes (Beat !task : unit msg) [])

(* The child never returns: it streams a [Beat] at each task start and
   a [Done] per finished task, then _exits without flushing the
   parent's inherited stdio buffers (a plain [exit] would run at_exit
   and print them twice). A raising [f] ends the stream early; the
   parent charges exactly that task. *)
let spawn f indices =
  (* Anything buffered before the fork would otherwise be inherited,
     and duplicated if the child's libc flushes it. *)
  flush stdout;
  flush stderr;
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let current = ref (-1) in
      beat_state := Some (w, current);
      (try
         List.iter
           (fun i ->
             current := i;
             write_exact w (Marshal.to_bytes (Beat i : unit msg) []);
             let v = f i in
             write_exact w (Marshal.to_bytes (Done (i, v)) []))
           indices
       with _ -> ());
      (try Unix.close w with Unix.Unix_error _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close w;
      { pid; fd = r; pending = indices; last_beat = Unix.gettimeofday () }

let reap w =
  (try Unix.close w.fd with Unix.Unix_error _ -> ());
  try ignore (restart_on_eintr (fun () -> Unix.waitpid [] w.pid))
  with Unix.Unix_error _ -> ()

let map ?on_result ?on_pool_event ?watchdog ~jobs ~f n =
  let notify i r = match on_result with Some g -> g i r | None -> () in
  let pool_notify e = match on_pool_event with Some g -> g e | None -> () in
  if n < 0 then invalid_arg "Parallel.map: negative task count";
  let jobs = Stdlib.max 1 (Stdlib.min jobs n) in
  if jobs <= 1 && watchdog = None then
    (* In-process reference semantics. A wedged task wedges the caller:
       anyone injecting hangs must pass [watchdog] to force forking. *)
    Array.init n (fun i ->
        let r = Value (f i) in
        notify i r;
        r)
  else begin
    let results = Array.make n Lost in
    let stripe j =
      List.filter (fun i -> i mod jobs = j) (List.init n Fun.id)
    in
    let spawn_noted f indices =
      let w = spawn f indices in
      pool_notify (Worker_spawned { pid = w.pid; tasks = List.length indices });
      w
    in
    let workers = ref (List.init jobs (fun j -> spawn_noted f (stripe j))) in
    (* If the caller's [on_result] raises (checkpoint write failure, a
       test killing the campaign mid-flight), don't leave children
       blocked on a pipe nobody reads. *)
    let kill_all () =
      List.iter
        (fun w ->
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap w)
        !workers;
      workers := []
    in
    let deliver w i v =
      results.(i) <- Value v;
      w.pending <- List.filter (fun j -> j <> i) w.pending;
      notify i (Value v)
    in
    let handle_message w = function
      | Beat _ -> w.last_beat <- Unix.gettimeofday ()
      | Done (i, v) ->
          w.last_beat <- Unix.gettimeofday ();
          deliver w i v
    in
    (* EOF: clean completion when nothing is pending; otherwise the
       worker died executing the earliest unreported task of its
       stripe. *)
    let handle_eof w =
      reap w;
      workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
      match w.pending with
      | [] -> pool_notify (Worker_done { pid = w.pid })
      | lost :: rest ->
          pool_notify
            (Worker_died
               { pid = w.pid; lost_task = Some lost; respawned = rest <> [] });
          results.(lost) <- Lost;
          notify lost Lost;
          if rest <> [] then workers := spawn_noted f rest :: !workers
    in
    (* A silent worker is SIGKILLed — but results it finished before
       wedging may still sit unread in the pipe, so drain to EOF first
       and deliver them. Only the task it was actually stuck on (the
       earliest still-unreported index) is censored as [Hung]; the rest
       of the stripe respawns, exactly like death recovery. *)
    let kill_hung w =
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (restart_on_eintr (fun () -> Unix.waitpid [] w.pid))
       with Unix.Unix_error _ -> ());
      let rec drain () =
        match read_message w.fd with
        | Some (Beat _) -> drain ()
        | Some (Done (i, v)) ->
            deliver w i v;
            drain ()
        | None -> ()
      in
      drain ();
      (try Unix.close w.fd with Unix.Unix_error _ -> ());
      workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
      match w.pending with
      | [] ->
          pool_notify
            (Worker_hung { pid = w.pid; lost_task = None; respawned = false })
      | lost :: rest ->
          pool_notify
            (Worker_hung
               { pid = w.pid; lost_task = Some lost; respawned = rest <> [] });
          results.(lost) <- Hung;
          notify lost Hung;
          if rest <> [] then workers := spawn_noted f rest :: !workers
    in
    try
      while !workers <> [] do
        let fds = List.map (fun w -> w.fd) !workers in
        (* Finite timeout always: the loop must regain control to run
           the watchdog even when every worker has gone silent. EINTR
           is just an empty round. *)
        let ready, _, _ =
          try Unix.select fds [] [] tick
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            match List.find_opt (fun w -> w.fd = fd) !workers with
            | None -> () (* already reaped in this round *)
            | Some w -> (
                match read_message fd with
                | Some m -> handle_message w m
                | None -> handle_eof w))
          ready;
        (match watchdog with
        | None -> ()
        | Some grace ->
            let t = Unix.gettimeofday () in
            let snapshot = !workers in
            List.iter
              (fun w ->
                if
                  List.memq w !workers
                  && w.pending <> []
                  && t -. w.last_beat > grace
                then kill_hung w)
              snapshot)
      done;
      results
    with e ->
      kill_all ();
      raise e
  end
