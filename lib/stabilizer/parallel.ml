type 'a result = Value of 'a | Lost | Hung

type pool_event =
  | Worker_spawned of { pid : int; tasks : int }
  | Worker_done of { pid : int }
  | Worker_died of { pid : int; lost_task : int option; respawned : bool }
  | Worker_hung of { pid : int; lost_task : int option; respawned : bool }
  | Worker_spawn_failed of { tasks : int }

(* Wire protocol, child -> parent. [Beat] carries the index of the task
   the worker is currently executing. Its payload never contains a value
   of the result type, so marshalling it at [unit msg] in {!beat} and
   reading it back at ['a msg] in the parent is representation-safe. *)
type 'a msg = Beat of int | Done of int * 'a

type worker = {
  pid : int;
  fd : Unix.file_descr;
  mutable pending : int list;  (* task indices still unreported, in order *)
  mutable last_beat : float;  (* wall clock of the last message received *)
}

(* How long one select waits before the watchdog gets a chance to look
   at the clock. Also bounds how stale [last_beat] comparisons can be. *)
let tick = 0.25

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

(* select(2) with EINTR restart that preserves the original deadline: a
   signal landing mid-wait must neither surface as [Unix_error] (which
   would abort the pool and censor healthy stripes) nor stretch the
   wait beyond [timeout] (which would starve the watchdog). *)
let select_intr read_fds timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go remaining =
    try Unix.select read_fds [] [] remaining
    with Unix.Unix_error (Unix.EINTR, _, _) ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then ([], [], []) else go left
  in
  go timeout

(* Returns false on EOF before [len] bytes arrived. *)
let read_exact fd buf pos len =
  let rec go pos len =
    if len = 0 then true
    else
      match restart_on_eintr (fun () -> Unix.read fd buf pos len) with
      | 0 -> false
      | k -> go (pos + k) (len - k)
  in
  go pos len

(* One marshalled message, or None on EOF / truncation (worker died
   mid-write; the partial payload is discarded). *)
let read_message fd =
  let header = Bytes.create Marshal.header_size in
  if not (read_exact fd header 0 Marshal.header_size) then None
  else
    let data_len = Marshal.data_size header 0 in
    let buf = Bytes.create (Marshal.header_size + data_len) in
    Bytes.blit header 0 buf 0 Marshal.header_size;
    if not (read_exact fd buf Marshal.header_size data_len) then None
    else Some (Marshal.from_bytes buf 0)

let write_exact fd buf =
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then
      let k = restart_on_eintr (fun () -> Unix.write fd buf pos (len - pos)) in
      go (pos + k)
  in
  go 0

(* Set inside a forked worker, never in the parent: [beat] is a no-op
   on the in-process path and in the pool's parent process, so callers
   (the supervisor heartbeats at every attempt start) can call it
   unconditionally. *)
let beat_state : (Unix.file_descr * int ref) option ref = ref None

let beat () =
  match !beat_state with
  | None -> ()
  | Some (fd, task) ->
      write_exact fd (Marshal.to_bytes (Beat !task : unit msg) [])

(* Test hook: make the next [n] forks fail with EAGAIN, to exercise
   the spawn retry/censoring path without exhausting real pids. *)
let forced_fork_failures = ref 0

let fork_for_spawn () =
  if !forced_fork_failures > 0 then begin
    decr forced_fork_failures;
    raise (Unix.Unix_error (Unix.EAGAIN, "fork", "injected for testing"))
  end
  else Unix.fork ()

(* Transient spawn failures (EAGAIN/ENOMEM: pid or memory pressure that
   may clear) are retried with bounded exponential backoff before the
   stripe is given up on. *)
let spawn_backoff = [ 0.05; 0.1; 0.2; 0.4; 0.8 ]

(* The child never returns: it streams a [Beat] at each task start and
   a [Done] per finished task, then _exits without flushing the
   parent's inherited stdio buffers (a plain [exit] would run at_exit
   and print them twice). A raising [f] ends the stream early (EPIPE
   from a dead parent included — a worker whose reader vanished stops
   quietly instead of computing into the void); the parent charges
   exactly that task.

   Returns [None] when the fork keeps failing transiently after the
   whole backoff schedule: the caller censors the stripe instead of
   aborting the campaign. *)
let spawn f indices =
  (* Anything buffered before the fork would otherwise be inherited,
     and duplicated if the child's libc flushes it. *)
  flush stdout;
  flush stderr;
  let rec attempt backoff =
    let r, w = Unix.pipe () in
    match fork_for_spawn () with
    | 0 ->
        Unix.close r;
        let current = ref (-1) in
        beat_state := Some (w, current);
        (try
           List.iter
             (fun i ->
               current := i;
               write_exact w (Marshal.to_bytes (Beat i : unit msg) []);
               let v = f i in
               write_exact w (Marshal.to_bytes (Done (i, v)) []))
             indices
         with _ -> ());
        (try Unix.close w with Unix.Unix_error _ -> ());
        Unix._exit 0
    | pid ->
        Unix.close w;
        Some { pid; fd = r; pending = indices; last_beat = Unix.gettimeofday () }
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.ENOMEM), _, _) -> (
        (try Unix.close r with Unix.Unix_error _ -> ());
        (try Unix.close w with Unix.Unix_error _ -> ());
        match backoff with
        | [] -> None
        | delay :: rest ->
            Unix.sleepf delay;
            attempt rest)
  in
  attempt spawn_backoff

let reap w =
  (try Unix.close w.fd with Unix.Unix_error _ -> ());
  try ignore (restart_on_eintr (fun () -> Unix.waitpid [] w.pid))
  with Unix.Unix_error _ -> ()

let map ?on_result ?on_pool_event ?watchdog ~jobs ~f n =
  let notify i r = match on_result with Some g -> g i r | None -> () in
  let pool_notify e = match on_pool_event with Some g -> g e | None -> () in
  if n < 0 then invalid_arg "Parallel.map: negative task count";
  let jobs = Stdlib.max 1 (Stdlib.min jobs n) in
  if jobs <= 1 && watchdog = None then
    (* In-process reference semantics. A wedged task wedges the caller:
       anyone injecting hangs must pass [watchdog] to force forking. *)
    Array.init n (fun i ->
        let r = Value (f i) in
        notify i r;
        r)
  else begin
    let results = Array.make n Lost in
    let stripe j =
      List.filter (fun i -> i mod jobs = j) (List.init n Fun.id)
    in
    (* A stripe whose worker cannot be forked even after the backoff
       schedule is censored whole — every task [Lost] — and the pool
       keeps going: spawn failure degrades the sample, never the
       campaign. *)
    let spawn_noted f indices =
      match spawn f indices with
      | Some w ->
          pool_notify
            (Worker_spawned { pid = w.pid; tasks = List.length indices });
          Some w
      | None ->
          pool_notify (Worker_spawn_failed { tasks = List.length indices });
          List.iter
            (fun i ->
              results.(i) <- Lost;
              notify i Lost)
            indices;
          None
    in
    let workers =
      ref (List.filter_map (fun j -> spawn_noted f (stripe j)) (List.init jobs Fun.id))
    in
    (* If the caller's [on_result] raises (checkpoint write failure, a
       test killing the campaign mid-flight), don't leave children
       blocked on a pipe nobody reads. *)
    let kill_all () =
      List.iter
        (fun w ->
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap w)
        !workers;
      workers := []
    in
    let deliver w i v =
      results.(i) <- Value v;
      w.pending <- List.filter (fun j -> j <> i) w.pending;
      notify i (Value v)
    in
    let handle_message w = function
      | Beat _ -> w.last_beat <- Unix.gettimeofday ()
      | Done (i, v) ->
          w.last_beat <- Unix.gettimeofday ();
          deliver w i v
    in
    (* EOF: clean completion when nothing is pending; otherwise the
       worker died executing the earliest unreported task of its
       stripe. *)
    let handle_eof w =
      reap w;
      workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
      match w.pending with
      | [] -> pool_notify (Worker_done { pid = w.pid })
      | lost :: rest -> (
          pool_notify
            (Worker_died
               { pid = w.pid; lost_task = Some lost; respawned = rest <> [] });
          results.(lost) <- Lost;
          notify lost Lost;
          if rest <> [] then
            match spawn_noted f rest with
            | Some w' -> workers := w' :: !workers
            | None -> ())
    in
    (* A silent worker is SIGKILLed — but results it finished before
       wedging may still sit unread in the pipe, so drain to EOF first
       and deliver them. Only the task it was actually stuck on (the
       earliest still-unreported index) is censored as [Hung]; the rest
       of the stripe respawns, exactly like death recovery. *)
    let kill_hung w =
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (restart_on_eintr (fun () -> Unix.waitpid [] w.pid))
       with Unix.Unix_error _ -> ());
      let rec drain () =
        match read_message w.fd with
        | Some (Beat _) -> drain ()
        | Some (Done (i, v)) ->
            deliver w i v;
            drain ()
        | None -> ()
      in
      drain ();
      (try Unix.close w.fd with Unix.Unix_error _ -> ());
      workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
      match w.pending with
      | [] ->
          pool_notify
            (Worker_hung { pid = w.pid; lost_task = None; respawned = false })
      | lost :: rest -> (
          pool_notify
            (Worker_hung
               { pid = w.pid; lost_task = Some lost; respawned = rest <> [] });
          results.(lost) <- Hung;
          notify lost Hung;
          if rest <> [] then
            match spawn_noted f rest with
            | Some w' -> workers := w' :: !workers
            | None -> ())
    in
    try
      while !workers <> [] do
        let fds = List.map (fun w -> w.fd) !workers in
        (* Finite timeout always: the loop must regain control to run
           the watchdog even when every worker has gone silent. A
           signal mid-select restarts the wait with the remaining
           timeout instead of surfacing (or resetting the clock). *)
        let ready, _, _ = select_intr fds tick in
        List.iter
          (fun fd ->
            match List.find_opt (fun w -> w.fd = fd) !workers with
            | None -> () (* already reaped in this round *)
            | Some w -> (
                match read_message fd with
                | Some m -> handle_message w m
                | None -> handle_eof w))
          ready;
        (match watchdog with
        | None -> ()
        | Some grace ->
            let t = Unix.gettimeofday () in
            let snapshot = !workers in
            List.iter
              (fun w ->
                if
                  List.memq w !workers
                  && w.pending <> []
                  && t -. w.last_beat > grace
                then kill_hung w)
              snapshot)
      done;
      results
    with e ->
      kill_all ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Dispatchers: pluggable task execution for external schedulers       *)
(* ------------------------------------------------------------------ *)

type dispatcher = {
  dispatch :
    'a.
    ?on_result:(int -> 'a result -> unit) ->
    ?on_pool_event:(pool_event -> unit) ->
    ?watchdog:float ->
    jobs:int ->
    f:(int -> 'a) ->
    int ->
    unit;
}

let pool_dispatcher =
  {
    dispatch =
      (fun ?on_result ?on_pool_event ?watchdog ~jobs ~f n ->
        ignore (map ?on_result ?on_pool_event ?watchdog ~jobs ~f n));
  }

(* A dispatcher that executes tasks in index order, in batches whose
   sizes an external scheduler decides: [acquire wanted] blocks until
   the scheduler grants [1..wanted] task slots (raising to abort — the
   exception propagates to the caller with every already-granted batch
   fully delivered), each batch runs on its own fork pool sized to the
   grant, and [release n] returns the slots. Because results are merged
   by task index downstream, the batch partition is unobservable in the
   output — which is what lets a daemon multiplex many campaigns onto
   one run budget without disturbing any campaign's bytes. *)
let batched ~acquire ~release =
  {
    dispatch =
      (fun ?on_result ?on_pool_event ?watchdog ~jobs:_ ~f n ->
        let next = ref 0 in
        while !next < n do
          let granted = acquire (n - !next) in
          let granted = Stdlib.max 1 (Stdlib.min granted (n - !next)) in
          let base = !next in
          Fun.protect
            ~finally:(fun () -> release granted)
            (fun () ->
              ignore
                (map
                   ?on_result:
                     (Option.map
                        (fun g j r -> g (base + j) r)
                        on_result)
                   ?on_pool_event ?watchdog ~jobs:granted
                   ~f:(fun j -> f (base + j))
                   granted));
          next := base + granted
        done);
  }
