(** The STABILIZER runtime: wires a program, a configuration and a
    fresh machine model into an interpreter environment, runs the
    program, and reports timing.

    With code randomization on, function entries go through the
    trap/relocate machinery of {!Stz_layout.Code_rand}; the
    re-randomization timer is virtual (simulated cycles) and fires at
    the next function entry after an epoch expires, matching the
    paper's "re-randomization occurs when the next trap executes".
    Global references and calls then pay one extra data access through
    the caller's relocation table, and stack randomization pays the
    pad-table load per call — the instrumentation the compiler pass
    inserts in the real system. *)

type result = {
  cycles : int;
  virtual_seconds : float;  (** cycles at the model's 3.2 GHz clock *)
  return_value : int;
  counters : Stz_machine.Hierarchy.counters;
  relocations : int;  (** 0 unless code randomization is on *)
  epochs : int;  (** re-randomizations performed + 1 *)
  adaptive_triggers : int;
      (** epochs cut short by the §8 adaptive trigger (0 unless
          [Config.adaptive]) *)
  heap_stats : Stz_alloc.Allocator.stats;
  profile : Profiler.entry list option;
      (** hottest-first per-function attribution when [profile] was
          requested *)
  events : Stz_telemetry.Event.t list;
      (** run-local telemetry, clocked in simulated cycles from 0 — an
          ["execute"] span wrapping ["rerandomize"] instants. Empty
          unless [events] was requested, so the default path allocates
          nothing. *)
}

(** What the machine had measured when a run died mid-flight. *)
type partial = {
  p_cycles : int;
  p_counters : Stz_machine.Hierarchy.counters;
  p_epochs : int;
  p_relocations : int;
  p_adaptive_triggers : int;
}

(** Raised by {!run} in place of any non-fatal trap from the
    interpreter or a fault injector: the original exception plus the
    partial counters and a closed (well-formed) event stream, so
    censored runs keep their measurements. [Stack_overflow] and
    [Assert_failure] still propagate raw — those are harness bugs, not
    run outcomes. *)
exception
  Trap of {
    trap : exn;
    partial : partial;
    events : Stz_telemetry.Event.t list;
  }

val partial_of_result : result -> partial

(** [run ~config ~seed p ~args] executes one complete run. [seed]
    drives every random choice (link order, heap shuffling, code
    placement, stack pads), so runs are reproducible; vary the seed to
    sample the layout space. [machine_factory] substitutes a non-default
    machine model (each run gets a fresh instance). [env_wrap] is
    applied to the fully-built interpreter environment just before
    execution — the hook through which {!Stz_faults.Injector} injects
    allocation failures, heap poisoning and preemption spikes. *)
val run :
  ?limits:Stz_vm.Interp.limits ->
  ?profile:bool ->
  ?events:bool ->
  ?machine_factory:(unit -> Stz_machine.Hierarchy.t) ->
  ?env_wrap:(Stz_vm.Interp.env -> Stz_vm.Interp.env) ->
  config:Config.t ->
  seed:int64 ->
  Stz_vm.Ir.program ->
  args:int list ->
  result
