(** Deficit-round-robin allocation of the shared pool's run slots
    across active campaigns: every scheduling pass visits the campaigns
    with outstanding requests in arrival order, tops each visited
    deficit up by the quantum, and grants
    [min (want, deficit, free slots)] — so a tenant that asks for
    thousands of runs drains the pool no faster than one asking for
    three, and every requester is served within one round. Classic DRR
    (Shreedhar & Varghese): campaigns with nothing to ask accumulate no
    deficit. *)

type t

(** [create ~quantum ~slots] — [slots] concurrent run slots shared by
    everyone; [quantum] runs of deficit added per visit (the fairness
    granularity). *)
val create : quantum:int -> slots:int -> t

val register : t -> key:string -> unit

(** Forget a campaign and reclaim any slots it still holds. *)
val unregister : t -> key:string -> unit

(** Record that campaign [key] currently wants up to [n] more run
    slots (replaces any previous want). *)
val want : t -> key:string -> int -> unit

(** Campaign [key] returned [n] slots. *)
val free : t -> key:string -> int -> unit

(** One DRR pass: allocate free slots to wanting campaigns; returns
    [(key, granted)] for every nonzero grant, and clears the
    corresponding wants. *)
val grants : t -> (string * int) list

(** Slots currently granted and not yet freed. *)
val busy : t -> int

val slots : t -> int

(** Per-flow DRR state in arrival order — the ops plane's scheduler
    view (outstanding want, accumulated deficit, slots held). *)
type flow_stat = { f_key : string; f_want : int; f_deficit : int; f_held : int }

val flows : t -> flow_stat list
