(** The daemon's durable state: one directory per campaign under
    [<spool>/<tenant>/<id>/], holding the campaign's manifest (what to
    run), its artifacts (checkpoint, CSV, optional trace and ledger)
    and its result (how it ended). Everything durable goes through
    {!Stz_store.Artifact}, so a SIGKILLed daemon leaves a spool that
    {!scan} + {!repair} can always bring back: a campaign directory
    with a result record is finished; one without is interrupted and
    resumes through the supervisor's checkpoint path.

    Tenant and campaign identifiers are filesystem tokens
    ([A-Za-z0-9._-], not starting with a dot, at most 64 bytes) —
    anything else is rejected at admission, so a hostile id can never
    escape the spool directory. *)

(** What one campaign runs: the subset of [szc campaign] options a
    manifest can carry. [opt] and [faults] / [storage_faults] are kept
    in their CLI string spellings and validated by {!validate}. *)
type spec = {
  bench : string;
  runs : int;
  seed : int;
  scale : float;
  opt : string;  (** optimization level, ["O0".."O3"] *)
  faults : string;  (** run fault profile, e.g. ["light"] *)
  storage_faults : string;  (** storage fault profile for artifact writes *)
  storage_seed : int;
  retries : int;
  min_n : int;
  ledger : bool;  (** append a history ledger entry (arms the monitor) *)
  trace : bool;  (** export a Chrome trace *)
}

val default_spec : spec

(** JSON round-trip for the wire and the manifest. Floats travel as
    ["%.17g"] strings, so a spec survives the trip bit-identically. *)
val spec_to_json : spec -> Stz_telemetry.Json.t

val spec_of_json : Stz_telemetry.Json.t -> (spec, string) result

(** Reject anything a runner could not execute: unknown benchmark,
    unparsable option strings, non-positive runs. *)
val validate : spec -> (unit, string) result

val token_ok : string -> bool

(** {1 Layout} *)

val dir : spool:string -> tenant:string -> id:string -> string
val manifest_path : string -> string
val checkpoint_path : string -> string
val csv_path : string -> string
val ledger_path : string -> string
val trace_path : string -> string
val result_path : string -> string
val pid_path : string -> string

(** {1 Manifest and result records} *)

val write_manifest : dir:string -> spec -> unit
val read_manifest : dir:string -> (spec, string) result

(** How a campaign ended. [Finished] carries the [szc campaign] exit
    code (0 verdict-capable, 2 insufficient uncensored runs, 3
    aborted). *)
type outcome = Finished of int | Cancelled

val outcome_state : outcome -> string
val write_result : dir:string -> outcome -> unit
val read_result : dir:string -> (outcome, string) result

(** Runs recorded in the campaign's checkpoint (completed and censored
    alike); 0 when the checkpoint is missing or unreadable. The honest
    progress count for a campaign with no live runner — an aborted
    campaign reports what it actually ran, not its plan. *)
val completed_runs : dir:string -> int

(** The runner's pid file — advisory, for stale-runner cleanup on
    daemon restart; never trusted further than a [kill]. *)
val write_pid : dir:string -> int -> unit

val read_pid : dir:string -> int option
val clear_pid : dir:string -> unit

(** {1 Recovery} *)

type entry = {
  tenant : string;
  id : string;
  entry_dir : string;
  spec : spec;
  result : outcome option;  (** [None] — interrupted, resume it *)
}

(** Walk the spool. Campaign directories whose manifest is unreadable
    or fails {!validate} are reported in the second list (reason
    attached) and left untouched for operator inspection. *)
val scan : spool:string -> entry list * (string * string) list

(** Repair one campaign directory after a crash, [szc fsck --repair]
    style: promote a rename-dropped [*.tmp] over a missing target,
    rewrite a salvageable checkpoint or ledger from its longest valid
    record prefix, drop a checkpoint too corrupt to salvage (the
    campaign restarts from zero rather than dying), and delete
    checksum-mismatched CSV/trace payloads (they are rewritten at
    completion). Returns a human-readable note per action taken. *)
val repair : dir:string -> string list
