type t = { fd : Unix.file_descr; dec : Wire.decoder }

let ( let* ) = Result.bind

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Deterministic jitter: attempt [k] of the stream seeded [seed] always
   sleeps the same amount — reproducible in tests, decorrelated across
   clients with different seeds. *)
let backoff_delay ~seed ~attempt =
  let base = Stdlib.min 1.0 (0.05 *. (2.0 ** float_of_int attempt)) in
  let g = Stz_prng.Splitmix.create (Int64.add seed (Int64.of_int attempt)) in
  let bits = Int64.to_int (Int64.logand (Stz_prng.Splitmix.next g) 0xFFFFL) in
  let jitter = float_of_int bits /. 65536.0 *. 0.25 *. base in
  base +. jitter

let transient = function
  | Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.ECONNRESET
  | Unix.EINTR ->
      true
  | _ -> false

let connect ~socket ~deadline ~seed () =
  let rec attempt k =
    if Unix.gettimeofday () > deadline then
      Error (Printf.sprintf "deadline exceeded connecting to %s" socket)
    else
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match restart_on_eintr (fun () -> Unix.connect fd (Unix.ADDR_UNIX socket)) with
      | () -> (
          match
            let greeting = Wire.greeting in
            let rec write_all off =
              if off < String.length greeting then
                write_all
                  (off
                  + restart_on_eintr (fun () ->
                        Unix.write_substring fd greeting off
                          (String.length greeting - off)))
            in
            write_all 0
          with
          | () -> Ok { fd; dec = Wire.create ~expect_greeting:true }
          | exception Unix.Unix_error (e, _, _) when transient e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Unix.sleepf (backoff_delay ~seed ~attempt:k);
              attempt (k + 1))
      | exception Unix.Unix_error (e, _, _) when transient e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf (backoff_delay ~seed ~attempt:k);
          attempt (k + 1)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket
               (Unix.error_message e))
  in
  attempt 0

let send t req =
  let bytes = Protocol.request_to_frame req in
  let len = String.length bytes in
  let rec go off =
    if off >= len then Ok ()
    else
      match
        restart_on_eintr (fun () -> Unix.write_substring t.fd bytes off (len - off))
      with
      | n -> go (off + n)
      | exception Unix.Unix_error (e, _, _) ->
          Error ("send failed: " ^ Unix.error_message e)
  in
  go 0

let read_response t ~deadline =
  let buf = Bytes.create 65536 in
  let rec step () =
    match Wire.next t.dec with
    | Some (Wire.Frame { verb; payload }) ->
        Protocol.response_of_frame ~verb ~payload
    | Some (Wire.Corrupt msg) -> Error ("corrupt frame from daemon: " ^ msg)
    | None -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error "deadline exceeded waiting for daemon"
        else
          match
            restart_on_eintr (fun () -> Unix.select [ t.fd ] [] [] remaining)
          with
          | [], _, _ -> Error "deadline exceeded waiting for daemon"
          | _ -> (
              match
                restart_on_eintr (fun () -> Unix.read t.fd buf 0 (Bytes.length buf))
              with
              | 0 -> Error "daemon closed the connection"
              | n ->
                  Wire.feed t.dec (Bytes.sub_string buf 0 n);
                  step ()
              | exception Unix.Unix_error (e, _, _) ->
                  Error ("read failed: " ^ Unix.error_message e)))
  in
  step ()

let rpc t ~deadline req =
  let* () = send t req in
  read_response t ~deadline

let submit_and_wait ~socket ~deadline ~seed ~tenant ~id ~spec ~progress =
  (* [next_run] makes the feed exactly-once across reconnects: every
     re-attach streams from the first run we have not yet seen. *)
  let next_run = ref 0 in
  let rec session k =
    if Unix.gettimeofday () > deadline then Error "deadline exceeded"
    else
      let retry reason =
        Unix.sleepf (backoff_delay ~seed ~attempt:k);
        ignore reason;
        session (k + 1)
      in
      match connect ~socket ~deadline ~seed:(Int64.add seed 0x5e55L) () with
      | Error e -> Error e
      | Ok t -> (
          let finish r =
            close t;
            r
          in
          match rpc t ~deadline (Protocol.Submit { tenant; id; spec }) with
          | Error e -> finish () |> fun () -> retry e
          | Ok (Protocol.Rejected { reason })
            when reason = "daemon is draining" ->
              (* The daemon is going down; a successor will pick the
                 spool up. Keep trying until the deadline. *)
              finish () |> fun () -> retry reason
          | Ok (Protocol.Rejected { reason }) ->
              finish (Error ("rejected: " ^ reason))
          | Ok (Protocol.Accepted _) -> (
              match
                send t (Protocol.Stream { tenant; id; from_run = !next_run })
              with
              | Error e -> finish () |> fun () -> retry e
              | Ok () ->
                  let rec follow () =
                    match read_response t ~deadline with
                    | Error e -> finish () |> fun () -> retry e
                    | Ok (Protocol.Progress { run; line }) ->
                        if run >= !next_run then begin
                          progress run line;
                          next_run := run + 1
                        end;
                        follow ()
                    | Ok (Protocol.Summary { exit_code; line }) ->
                        finish (Ok (exit_code, line))
                    | Ok Protocol.Cancelled ->
                        finish (Error "campaign was cancelled")
                    | Ok (Protocol.Rejected { reason }) ->
                        finish (Error ("rejected: " ^ reason))
                    | Ok (Protocol.Error_frame msg) ->
                        finish (Error ("protocol error: " ^ msg))
                    | Ok _ -> follow ()
                  in
                  follow ())
          | Ok (Protocol.Error_frame msg) ->
              finish (Error ("protocol error: " ^ msg))
          | Ok _ -> finish () |> fun () -> retry "unexpected reply")
  in
  session 0
