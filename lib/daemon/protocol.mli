(** Typed requests and responses over {!Wire} frames. Each message is
    one frame: the verb names the constructor, the payload is a JSON
    object. Decoding never raises — a frame that does not parse is a
    protocol error, answered with an [error] frame and a close. *)

type request =
  | Ping
  | Submit of { tenant : string; id : string; spec : Spool.spec }
  | Status of { tenant : string; id : string }
  | Stream of { tenant : string; id : string; from_run : int }
      (** attach to a campaign's progress; finished runs from
          [from_run] on are replayed first, so a reconnecting client
          resumes its feed without gaps *)
  | Cancel of { tenant : string; id : string }
  | Drain

type response =
  | Pong
  | Accepted of { id : string; state : string }
      (** admission succeeded — or the submit was an idempotent
          duplicate, in which case [state] reports the existing
          campaign's state *)
  | Rejected of { reason : string }
  | Status_is of {
      state : string;
      completed : int;
      runs : int;
      exit_code : int option;
    }
  | Progress of { run : int; line : string }
  | Summary of { exit_code : int; line : string }
      (** terminal stream message: the campaign's [szc campaign] exit
          code and its one-line report *)
  | Draining of { in_flight : int }
  | Cancelled
  | Error_frame of string
      (** protocol fault (corrupt frame, unknown verb, bad payload);
          the sender closes the connection after this frame *)

val request_to_frame : request -> string
val request_of_frame : verb:string -> payload:string -> (request, string) result
val response_to_frame : response -> string

val response_of_frame :
  verb:string -> payload:string -> (response, string) result
