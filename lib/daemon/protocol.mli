(** Typed requests and responses over {!Wire} frames. Each message is
    one frame: the verb names the constructor, the payload is a JSON
    object. Decoding never raises — a frame that does not parse is a
    protocol error, answered with an [error] frame and a close. *)

type request =
  | Ping
  | Submit of { tenant : string; id : string; spec : Spool.spec }
  | Status of { tenant : string; id : string }
  | Stream of { tenant : string; id : string; from_run : int }
      (** attach to a campaign's progress; finished runs from
          [from_run] on are replayed first, so a reconnecting client
          resumes its feed without gaps *)
  | Cancel of { tenant : string; id : string }
  | Drain
  | Stats  (** one ops-plane snapshot ({!Stats_is}) *)
  | Watch of { interval_ms : int }
      (** subscribe to periodic {!Stats_is} frames, one every
          [interval_ms] (clamped to [[100, 60000]]); the subscription
          lasts until the client disconnects *)

(** One row of the per-tenant table behind [szc remote top]. *)
type tenant_row = {
  tr_tenant : string;
  tr_active : int;  (** campaigns currently holding run slots *)
  tr_queued : int;  (** admitted campaigns waiting for slots *)
  tr_completed : int;  (** runs finished across in-flight campaigns *)
  tr_runs : int;  (** runs planned across in-flight campaigns *)
  tr_held : int;  (** run slots held right now *)
  tr_deficit : int;  (** accumulated DRR deficit *)
}

(** Ops-plane snapshot: identity and load plus the raw registry
    (counters, gauges, histogram summaries) so clients can render or
    diff without a second round trip. *)
type stats = {
  s_version : string;
  s_uptime_ms : int;
  s_draining : bool;
  s_slots_busy : int;
  s_slots_total : int;
  s_tenants : tenant_row list;
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_hists : (string * Stz_telemetry.Ops.hist_summary) list;
}

type response =
  | Pong
  | Accepted of { id : string; state : string }
      (** admission succeeded — or the submit was an idempotent
          duplicate, in which case [state] reports the existing
          campaign's state *)
  | Rejected of { reason : string }
  | Status_is of {
      state : string;
      completed : int;
      runs : int;
      exit_code : int option;
      info : (string * string) list;
          (** daemon-side extras (uptime_ms, version, last_drain, …);
              encoded only when nonempty and ignored by old decoders,
              so both directions stay backward compatible *)
    }
  | Progress of { run : int; line : string }
  | Summary of { exit_code : int; line : string }
      (** terminal stream message: the campaign's [szc campaign] exit
          code and its one-line report *)
  | Draining of { in_flight : int }
  | Cancelled
  | Stats_is of stats
  | Error_frame of string
      (** protocol fault (corrupt frame, unknown verb, bad payload);
          the sender closes the connection after this frame *)

val request_to_frame : request -> string
val request_of_frame : verb:string -> payload:string -> (request, string) result
val response_to_frame : response -> string

val response_of_frame :
  verb:string -> payload:string -> (response, string) result
