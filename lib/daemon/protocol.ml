module Json = Stz_telemetry.Json

type request =
  | Ping
  | Submit of { tenant : string; id : string; spec : Spool.spec }
  | Status of { tenant : string; id : string }
  | Stream of { tenant : string; id : string; from_run : int }
  | Cancel of { tenant : string; id : string }
  | Drain
  | Stats
  | Watch of { interval_ms : int }

type tenant_row = {
  tr_tenant : string;
  tr_active : int;
  tr_queued : int;
  tr_completed : int;
  tr_runs : int;
  tr_held : int;
  tr_deficit : int;
}

type stats = {
  s_version : string;
  s_uptime_ms : int;
  s_draining : bool;
  s_slots_busy : int;
  s_slots_total : int;
  s_tenants : tenant_row list;
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_hists : (string * Stz_telemetry.Ops.hist_summary) list;
}

type response =
  | Pong
  | Accepted of { id : string; state : string }
  | Rejected of { reason : string }
  | Status_is of {
      state : string;
      completed : int;
      runs : int;
      exit_code : int option;
      info : (string * string) list;
    }
  | Progress of { run : int; line : string }
  | Summary of { exit_code : int; line : string }
  | Draining of { in_flight : int }
  | Cancelled
  | Stats_is of stats
  | Error_frame of string

let ( let* ) = Result.bind

let obj_frame verb fields = Wire.frame ~verb (Json.to_string (Json.Obj fields))

let request_to_frame = function
  | Ping -> obj_frame "ping" []
  | Submit { tenant; id; spec } ->
      obj_frame "submit"
        [
          ("tenant", Json.String tenant);
          ("id", Json.String id);
          ("spec", Spool.spec_to_json spec);
        ]
  | Status { tenant; id } ->
      obj_frame "status" [ ("tenant", Json.String tenant); ("id", Json.String id) ]
  | Stream { tenant; id; from_run } ->
      obj_frame "stream"
        [
          ("tenant", Json.String tenant);
          ("id", Json.String id);
          ("from_run", Json.Int from_run);
        ]
  | Cancel { tenant; id } ->
      obj_frame "cancel" [ ("tenant", Json.String tenant); ("id", Json.String id) ]
  | Drain -> obj_frame "drain" []
  | Stats -> obj_frame "stats" []
  | Watch { interval_ms } ->
      obj_frame "watch" [ ("interval_ms", Json.Int interval_ms) ]

let tenant_row_to_json r =
  Json.Obj
    [
      ("tenant", Json.String r.tr_tenant);
      ("active", Json.Int r.tr_active);
      ("queued", Json.Int r.tr_queued);
      ("completed", Json.Int r.tr_completed);
      ("runs", Json.Int r.tr_runs);
      ("held", Json.Int r.tr_held);
      ("deficit", Json.Int r.tr_deficit);
    ]

let hist_summary_to_json (s : Stz_telemetry.Ops.hist_summary) =
  Json.Obj
    [
      ("count", Json.Int s.h_count);
      ("sum", Json.Int s.h_sum);
      ("min", Json.Int s.h_min);
      ("p50", Json.Int s.h_p50);
      ("p90", Json.Int s.h_p90);
      ("p99", Json.Int s.h_p99);
      ("max", Json.Int s.h_max);
    ]

let stats_to_fields s =
  [
    ("version", Json.String s.s_version);
    ("uptime_ms", Json.Int s.s_uptime_ms);
    ("draining", Json.Bool s.s_draining);
    ("busy", Json.Int s.s_slots_busy);
    ("slots", Json.Int s.s_slots_total);
    ("tenants", Json.List (List.map tenant_row_to_json s.s_tenants));
    ( "counters",
      Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.s_counters) );
    ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.s_gauges));
    ( "hists",
      Json.Obj (List.map (fun (k, h) -> (k, hist_summary_to_json h)) s.s_hists)
    );
  ]

let response_to_frame = function
  | Pong -> obj_frame "pong" []
  | Accepted { id; state } ->
      obj_frame "accepted" [ ("id", Json.String id); ("state", Json.String state) ]
  | Rejected { reason } -> obj_frame "rejected" [ ("reason", Json.String reason) ]
  | Status_is { state; completed; runs; exit_code; info } ->
      obj_frame "status-is"
        ([
           ("state", Json.String state);
           ("completed", Json.Int completed);
           ("runs", Json.Int runs);
           ( "exit_code",
             match exit_code with Some c -> Json.Int c | None -> Json.Null );
         ]
        @
        (* Older clients ignore unknown fields, so the info object can
           ride along without a protocol version bump. *)
        if info = [] then []
        else
          [ ("info", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) info)) ]
        )
  | Progress { run; line } ->
      obj_frame "progress" [ ("run", Json.Int run); ("line", Json.String line) ]
  | Summary { exit_code; line } ->
      obj_frame "summary"
        [ ("exit_code", Json.Int exit_code); ("line", Json.String line) ]
  | Draining { in_flight } ->
      obj_frame "draining" [ ("in_flight", Json.Int in_flight) ]
  | Cancelled -> obj_frame "cancelled" []
  | Stats_is s -> obj_frame "stats-is" (stats_to_fields s)
  | Error_frame msg -> obj_frame "error" [ ("message", Json.String msg) ]

let parse payload =
  match Json.of_string payload with
  | Ok j -> Ok j
  | Error e -> Error ("malformed frame payload: " ^ e)

let str name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or malformed %S" name)

let int_field name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or malformed %S" name)

let tenant_and_id j =
  let* tenant = str "tenant" j in
  let* id = str "id" j in
  let* () =
    if Spool.token_ok tenant && Spool.token_ok id then Ok ()
    else Error "tenant and id must be filesystem tokens ([A-Za-z0-9._-], <= 64)"
  in
  Ok (tenant, id)

let request_of_frame ~verb ~payload =
  match verb with
  | "ping" -> Ok Ping
  | "drain" -> Ok Drain
  | "submit" ->
      let* j = parse payload in
      let* tenant, id = tenant_and_id j in
      let* spec_json =
        match Json.member "spec" j with
        | Some s -> Ok s
        | None -> Error "missing \"spec\""
      in
      let* spec = Spool.spec_of_json spec_json in
      Ok (Submit { tenant; id; spec })
  | "status" ->
      let* j = parse payload in
      let* tenant, id = tenant_and_id j in
      Ok (Status { tenant; id })
  | "stream" ->
      let* j = parse payload in
      let* tenant, id = tenant_and_id j in
      let* from_run = int_field "from_run" j in
      Ok (Stream { tenant; id; from_run })
  | "cancel" ->
      let* j = parse payload in
      let* tenant, id = tenant_and_id j in
      Ok (Cancel { tenant; id })
  | "stats" -> Ok Stats
  | "watch" ->
      let* j = parse payload in
      let* interval_ms = int_field "interval_ms" j in
      if interval_ms < 100 || interval_ms > 60_000 then
        Error "interval_ms must be within [100, 60000]"
      else Ok (Watch { interval_ms })
  | v -> Error (Printf.sprintf "unknown request verb %S" v)

let info_of_json j =
  match Json.member "info" j with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
        fields
  | _ -> []

let int_entries = function
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int v))
        fields
  | _ -> []

let tenant_row_of_json j =
  let* tenant = str "tenant" j in
  let* active = int_field "active" j in
  let* queued = int_field "queued" j in
  let* completed = int_field "completed" j in
  let* runs = int_field "runs" j in
  let* held = int_field "held" j in
  let* deficit = int_field "deficit" j in
  Ok
    {
      tr_tenant = tenant;
      tr_active = active;
      tr_queued = queued;
      tr_completed = completed;
      tr_runs = runs;
      tr_held = held;
      tr_deficit = deficit;
    }

let hist_summary_of_json j : (Stz_telemetry.Ops.hist_summary, string) result =
  let* count = int_field "count" j in
  let* sum = int_field "sum" j in
  let* vmin = int_field "min" j in
  let* p50 = int_field "p50" j in
  let* p90 = int_field "p90" j in
  let* p99 = int_field "p99" j in
  let* vmax = int_field "max" j in
  Ok
    {
      Stz_telemetry.Ops.h_count = count;
      h_sum = sum;
      h_min = vmin;
      h_p50 = p50;
      h_p90 = p90;
      h_p99 = p99;
      h_max = vmax;
    }

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect f rest in
      Ok (y :: ys)

let stats_of_json j =
  let* version = str "version" j in
  let* uptime_ms = int_field "uptime_ms" j in
  let draining =
    match Json.member "draining" j with Some (Json.Bool b) -> b | _ -> false
  in
  let* busy = int_field "busy" j in
  let* slots = int_field "slots" j in
  let* tenants =
    match Json.member "tenants" j with
    | Some (Json.List rows) -> collect tenant_row_of_json rows
    | _ -> Error "missing or malformed \"tenants\""
  in
  let counters = int_entries (Json.member "counters" j) in
  let gauges = int_entries (Json.member "gauges" j) in
  let* hists =
    match Json.member "hists" j with
    | Some (Json.Obj fields) ->
        collect
          (fun (k, v) ->
            let* h = hist_summary_of_json v in
            Ok (k, h))
          fields
    | _ -> Ok []
  in
  Ok
    {
      s_version = version;
      s_uptime_ms = uptime_ms;
      s_draining = draining;
      s_slots_busy = busy;
      s_slots_total = slots;
      s_tenants = tenants;
      s_counters = counters;
      s_gauges = gauges;
      s_hists = hists;
    }

let response_of_frame ~verb ~payload =
  match verb with
  | "pong" -> Ok Pong
  | "cancelled" -> Ok Cancelled
  | "accepted" ->
      let* j = parse payload in
      let* id = str "id" j in
      let* state = str "state" j in
      Ok (Accepted { id; state })
  | "rejected" ->
      let* j = parse payload in
      let* reason = str "reason" j in
      Ok (Rejected { reason })
  | "status-is" ->
      let* j = parse payload in
      let* state = str "state" j in
      let* completed = int_field "completed" j in
      let* runs = int_field "runs" j in
      let exit_code = Option.bind (Json.member "exit_code" j) Json.to_int in
      let info = info_of_json j in
      Ok (Status_is { state; completed; runs; exit_code; info })
  | "progress" ->
      let* j = parse payload in
      let* run = int_field "run" j in
      let* line = str "line" j in
      Ok (Progress { run; line })
  | "summary" ->
      let* j = parse payload in
      let* exit_code = int_field "exit_code" j in
      let* line = str "line" j in
      Ok (Summary { exit_code; line })
  | "draining" ->
      let* j = parse payload in
      let* in_flight = int_field "in_flight" j in
      Ok (Draining { in_flight })
  | "stats-is" ->
      let* j = parse payload in
      let* s = stats_of_json j in
      Ok (Stats_is s)
  | "error" ->
      let* j = parse payload in
      let* message = str "message" j in
      Ok (Error_frame message)
  | v -> Error (Printf.sprintf "unknown response verb %S" v)
