module Json = Stz_telemetry.Json

type request =
  | Ping
  | Submit of { tenant : string; id : string; spec : Spool.spec }
  | Status of { tenant : string; id : string }
  | Stream of { tenant : string; id : string; from_run : int }
  | Cancel of { tenant : string; id : string }
  | Drain

type response =
  | Pong
  | Accepted of { id : string; state : string }
  | Rejected of { reason : string }
  | Status_is of {
      state : string;
      completed : int;
      runs : int;
      exit_code : int option;
    }
  | Progress of { run : int; line : string }
  | Summary of { exit_code : int; line : string }
  | Draining of { in_flight : int }
  | Cancelled
  | Error_frame of string

let ( let* ) = Result.bind

let obj_frame verb fields = Wire.frame ~verb (Json.to_string (Json.Obj fields))

let request_to_frame = function
  | Ping -> obj_frame "ping" []
  | Submit { tenant; id; spec } ->
      obj_frame "submit"
        [
          ("tenant", Json.String tenant);
          ("id", Json.String id);
          ("spec", Spool.spec_to_json spec);
        ]
  | Status { tenant; id } ->
      obj_frame "status" [ ("tenant", Json.String tenant); ("id", Json.String id) ]
  | Stream { tenant; id; from_run } ->
      obj_frame "stream"
        [
          ("tenant", Json.String tenant);
          ("id", Json.String id);
          ("from_run", Json.Int from_run);
        ]
  | Cancel { tenant; id } ->
      obj_frame "cancel" [ ("tenant", Json.String tenant); ("id", Json.String id) ]
  | Drain -> obj_frame "drain" []

let response_to_frame = function
  | Pong -> obj_frame "pong" []
  | Accepted { id; state } ->
      obj_frame "accepted" [ ("id", Json.String id); ("state", Json.String state) ]
  | Rejected { reason } -> obj_frame "rejected" [ ("reason", Json.String reason) ]
  | Status_is { state; completed; runs; exit_code } ->
      obj_frame "status-is"
        [
          ("state", Json.String state);
          ("completed", Json.Int completed);
          ("runs", Json.Int runs);
          ( "exit_code",
            match exit_code with Some c -> Json.Int c | None -> Json.Null );
        ]
  | Progress { run; line } ->
      obj_frame "progress" [ ("run", Json.Int run); ("line", Json.String line) ]
  | Summary { exit_code; line } ->
      obj_frame "summary"
        [ ("exit_code", Json.Int exit_code); ("line", Json.String line) ]
  | Draining { in_flight } ->
      obj_frame "draining" [ ("in_flight", Json.Int in_flight) ]
  | Cancelled -> obj_frame "cancelled" []
  | Error_frame msg -> obj_frame "error" [ ("message", Json.String msg) ]

let parse payload =
  match Json.of_string payload with
  | Ok j -> Ok j
  | Error e -> Error ("malformed frame payload: " ^ e)

let str name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or malformed %S" name)

let int_field name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or malformed %S" name)

let tenant_and_id j =
  let* tenant = str "tenant" j in
  let* id = str "id" j in
  let* () =
    if Spool.token_ok tenant && Spool.token_ok id then Ok ()
    else Error "tenant and id must be filesystem tokens ([A-Za-z0-9._-], <= 64)"
  in
  Ok (tenant, id)

let request_of_frame ~verb ~payload =
  match verb with
  | "ping" -> Ok Ping
  | "drain" -> Ok Drain
  | "submit" ->
      let* j = parse payload in
      let* tenant, id = tenant_and_id j in
      let* spec_json =
        match Json.member "spec" j with
        | Some s -> Ok s
        | None -> Error "missing \"spec\""
      in
      let* spec = Spool.spec_of_json spec_json in
      Ok (Submit { tenant; id; spec })
  | "status" ->
      let* j = parse payload in
      let* tenant, id = tenant_and_id j in
      Ok (Status { tenant; id })
  | "stream" ->
      let* j = parse payload in
      let* tenant, id = tenant_and_id j in
      let* from_run = int_field "from_run" j in
      Ok (Stream { tenant; id; from_run })
  | "cancel" ->
      let* j = parse payload in
      let* tenant, id = tenant_and_id j in
      Ok (Cancel { tenant; id })
  | v -> Error (Printf.sprintf "unknown request verb %S" v)

let response_of_frame ~verb ~payload =
  match verb with
  | "pong" -> Ok Pong
  | "cancelled" -> Ok Cancelled
  | "accepted" ->
      let* j = parse payload in
      let* id = str "id" j in
      let* state = str "state" j in
      Ok (Accepted { id; state })
  | "rejected" ->
      let* j = parse payload in
      let* reason = str "reason" j in
      Ok (Rejected { reason })
  | "status-is" ->
      let* j = parse payload in
      let* state = str "state" j in
      let* completed = int_field "completed" j in
      let* runs = int_field "runs" j in
      let exit_code = Option.bind (Json.member "exit_code" j) Json.to_int in
      Ok (Status_is { state; completed; runs; exit_code })
  | "progress" ->
      let* j = parse payload in
      let* run = int_field "run" j in
      let* line = str "line" j in
      Ok (Progress { run; line })
  | "summary" ->
      let* j = parse payload in
      let* exit_code = int_field "exit_code" j in
      let* line = str "line" j in
      Ok (Summary { exit_code; line })
  | "draining" ->
      let* j = parse payload in
      let* in_flight = int_field "in_flight" j in
      Ok (Draining { in_flight })
  | "error" ->
      let* j = parse payload in
      let* message = str "message" j in
      Ok (Error_frame message)
  | v -> Error (Printf.sprintf "unknown response verb %S" v)
