type config = {
  socket : string;
  spool : string;
  limits : Quota.limits;
  slots : int;
  quantum : int;
  verbose : bool;
}

let default_config ~socket ~spool =
  {
    socket;
    spool;
    limits = Quota.default_limits;
    slots = 4;
    quantum = 2;
    verbose = false;
  }

let max_restarts = 3

(* Transient fork failures (pid/memory pressure) are retried this many
   times with doubling backoff before the spawn is reported failed. *)
let max_fork_retries = 3

(* A client that stops reading gets this much buffered output before it
   is declared wedged and detached; its campaign keeps running. *)
let max_client_outbuf = 1 lsl 20

(* Retention bounds for a long-lived daemon: progress lines kept per
   campaign for late [stream] replay, and finished campaigns remembered
   in memory (older ones still answer from the spool). *)
let max_log_lines = 512
let max_done_cache = 256

type client = {
  c_fd : Unix.file_descr;
  mutable dec : Wire.decoder;
  mutable watching : string option;  (** runner key *)
  mutable alive : bool;
  outbuf : Buffer.t;  (** unsent frames; flushed on select writability *)
}

type runner_state = {
  key : string;
  tenant : string;
  id : string;
  r_dir : string;
  r_spec : Spool.spec;
  pid : int;
  grant_w : Unix.file_descr;
  event_r : Unix.file_descr;
  mutable completed : int;
  mutable log : (int * string) list;  (** newest first, capped *)
  mutable log_len : int;
  mutable finished : (int * string) option;  (** Finished event payload *)
  mutable cancelling : bool;
  mutable stop_sent : bool;  (** a Stop grant is already queued *)
  mutable restarts : int;
}

(* A finished campaign this daemon still remembers: lets status/stream
   answer without a runner. Spool results survive restarts; this cache
   additionally keeps the summary line and the progress log. *)
type done_state = { d_exit : int; d_line : string; d_log : (int * string) list }

type state = {
  cfg : config;
  quota : Quota.t;
  sched : Sched.t;
  mutable listen_fd : Unix.file_descr option;
  mutable clients : client list;
  mutable runners : runner_state list;
  done_cache : (string, done_state) Hashtbl.t;
  done_order : string Queue.t;  (** insertion order, for eviction *)
  mutable draining : bool;
}

let log_line st fmt =
  Printf.ksprintf
    (fun s -> if st.cfg.verbose then Printf.eprintf "szcd: %s\n%!" s)
    fmt

let key_of ~tenant ~id = tenant ^ "/" ^ id

let rec mkdir_p path =
  if path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ---------------------------------------------------------------- *)
(* Client IO                                                         *)
(* ---------------------------------------------------------------- *)

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

let detach st c =
  if c.alive then begin
    c.alive <- false;
    (match c.watching with
    | Some key -> log_line st "client detached from %s (campaign keeps running)" key
    | None -> ());
    c.watching <- None;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ())
  end

(* A dead or wedged client never takes the daemon down. Client sockets
   are non-blocking: what the kernel will not take now stays in
   [c.outbuf] and is flushed when select reports writability; a client
   that stops reading overflows the bound and is detached (its campaign
   keeps running). EPIPE / ECONNRESET likewise just detach. *)
let flush_client st c =
  (if c.alive && Buffer.length c.outbuf > 0 then
     let data = Buffer.contents c.outbuf in
     let len = String.length data in
     let rec go off =
       if off >= len then Buffer.clear c.outbuf
       else
         match Unix.write_substring c.c_fd data off (len - off) with
         | n -> go (off + n)
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
           ->
             (* Socket buffer full: keep the unsent tail for later. *)
             let rest = String.sub data off (len - off) in
             Buffer.clear c.outbuf;
             Buffer.add_string c.outbuf rest
         | exception Unix.Unix_error _ -> detach st c
     in
     go 0);
  if c.alive && Buffer.length c.outbuf > max_client_outbuf then begin
    log_line st "client not reading (%d bytes queued); detaching"
      (Buffer.length c.outbuf);
    detach st c
  end

let client_write st c bytes =
  if c.alive then begin
    Buffer.add_string c.outbuf bytes;
    flush_client st c
  end

let respond st c resp = client_write st c (Protocol.response_to_frame resp)

(* ---------------------------------------------------------------- *)
(* Runners                                                           *)
(* ---------------------------------------------------------------- *)

let watchers st key =
  List.filter (fun c -> c.alive && c.watching = Some key) st.clients

(* Fork under pid/memory pressure (EAGAIN/ENOMEM) is transient more
   often than not; retry briefly like [Parallel.spawn] does, then
   report failure so the caller can reject or fail one campaign instead
   of crashing the daemon. *)
let fork_with_retry () =
  let rec go attempt =
    match Unix.fork () with
    | pid -> Ok pid
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.ENOMEM) as e, _, _) ->
        if attempt >= max_fork_retries then
          Error (Printf.sprintf "fork: %s" (Unix.error_message e))
        else begin
          (try ignore (Unix.select [] [] [] (0.05 *. float_of_int (1 lsl attempt)))
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go (attempt + 1)
        end
  in
  go 0

let spawn_runner st ~tenant ~id ~dir ~spec ~resume ~disarm_storage ~restarts =
  let grant_r, grant_w = Unix.pipe () in
  let event_r, event_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match fork_with_retry () with
  | Error e ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ grant_r; grant_w; event_r; event_w ];
      Error e
  | Ok 0 ->
      (* Child: drop every daemon fd so a dead daemon leaves no open
         client sockets behind, then become the runner. *)
      (try Unix.close grant_w with Unix.Unix_error _ -> ());
      (try Unix.close event_r with Unix.Unix_error _ -> ());
      (match st.listen_fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      List.iter
        (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
        st.clients;
      List.iter
        (fun r ->
          (try Unix.close r.grant_w with Unix.Unix_error _ -> ());
          try Unix.close r.event_r with Unix.Unix_error _ -> ())
        st.runners;
      Runner.exec ~grant_r ~event_w ~dir ~spec ~resume ~disarm_storage
  | Ok pid ->
      Unix.close grant_r;
      Unix.close event_w;
      Spool.write_pid ~dir pid;
      let key = key_of ~tenant ~id in
      Sched.register st.sched ~key;
      let r =
        {
          key;
          tenant;
          id;
          r_dir = dir;
          r_spec = spec;
          pid;
          grant_w;
          event_r;
          completed = 0;
          log = [];
          log_len = 0;
          finished = None;
          cancelling = false;
          stop_sent = false;
          restarts;
        }
      in
      st.runners <- st.runners @ [ r ];
      log_line st "spawned runner pid %d for %s (resume=%b)" pid key resume;
      Ok r

let find_runner st key = List.find_opt (fun r -> r.key = key) st.runners

(* Bounded memory of finished campaigns: evict oldest-first once over
   the cap; evicted campaigns still answer status/stream from their
   spool result, just without the in-memory progress replay. *)
let remember_done st key d =
  if not (Hashtbl.mem st.done_cache key) then Queue.push key st.done_order;
  Hashtbl.replace st.done_cache key d;
  while
    Hashtbl.length st.done_cache > max_done_cache
    && not (Queue.is_empty st.done_order)
  do
    Hashtbl.remove st.done_cache (Queue.pop st.done_order)
  done

(* Newest-first prepend with amortized-O(1) truncation to the cap. *)
let log_progress r entry =
  r.log <- entry :: r.log;
  r.log_len <- r.log_len + 1;
  if r.log_len > 2 * max_log_lines then begin
    r.log <- List.filteri (fun i _ -> i < max_log_lines) r.log;
    r.log_len <- max_log_lines
  end

let release_runner st r =
  Sched.unregister st.sched ~key:r.key;
  Quota.release st.quota ~tenant:r.tenant ~runs:r.r_spec.Spool.runs;
  (try Unix.close r.grant_w with Unix.Unix_error _ -> ());
  (try Unix.close r.event_r with Unix.Unix_error _ -> ());
  Spool.clear_pid ~dir:r.r_dir;
  st.runners <- List.filter (fun x -> x.key <> r.key) st.runners

let abort_campaign st r line =
  Spool.write_result ~dir:r.r_dir (Spool.Finished 3);
  remember_done st r.key { d_exit = 3; d_line = line; d_log = r.log };
  List.iter
    (fun c -> respond st c (Protocol.Summary { exit_code = 3; line }))
    (watchers st r.key)

(* EOF on the event pipe: the runner exited. Decide what that means. *)
let reap_runner st r =
  let status =
    match restart_on_eintr (fun () -> Unix.waitpid [] r.pid) with
    | _, s -> Some s
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
  in
  release_runner st r;
  let finished_payload =
    match r.finished with
    | Some (code, line) -> Some (code, line)
    | None -> (
        (* The Finished event can be lost to a crash after the result
           record was already durable; trust the spool. *)
        match Spool.read_result ~dir:r.r_dir with
        | Ok (Spool.Finished code) -> Some (code, "campaign finished")
        | Ok Spool.Cancelled -> Some (1, "campaign cancelled")
        | Error _ -> None)
  in
  match finished_payload with
  | Some (code, line) ->
      remember_done st r.key { d_exit = code; d_line = line; d_log = r.log };
      log_line st "%s finished (exit %d)" r.key code
  | None when r.cancelling ->
      Spool.write_result ~dir:r.r_dir Spool.Cancelled;
      remember_done st r.key
        { d_exit = 1; d_line = "campaign cancelled"; d_log = r.log };
      List.iter (fun c -> respond st c Protocol.Cancelled) (watchers st r.key);
      log_line st "%s cancelled" r.key
  | None when st.draining ->
      (* Drained: checkpointed and resumable; the next daemon picks it
         up from the spool. *)
      log_line st "%s drained (checkpointed, resumable)" r.key
  | None ->
      (* Unexpected death (crash, OOM-kill, chaos). Restart from the
         checkpoint, faults disarmed — bounded, then fail the
         campaign. *)
      let stat_str =
        match status with
        | Some (Unix.WEXITED n) -> Printf.sprintf "exit %d" n
        | Some (Unix.WSIGNALED n) -> Printf.sprintf "signal %d" n
        | Some (Unix.WSTOPPED n) -> Printf.sprintf "stopped %d" n
        | None -> "unknown status"
      in
      if r.restarts < max_restarts then begin
        log_line st "%s runner died (%s); restarting (%d/%d)" r.key stat_str
          (r.restarts + 1) max_restarts;
        (* The admission promise was made at submit time; a restart
           never drops it. Force the reservation so the release above
           stays balanced and the budget reflects real in-flight work. *)
        Quota.readmit st.quota ~tenant:r.tenant ~runs:r.r_spec.Spool.runs;
        ignore (Spool.repair ~dir:r.r_dir);
        match
          spawn_runner st ~tenant:r.tenant ~id:r.id ~dir:r.r_dir
            ~spec:r.r_spec ~resume:true ~disarm_storage:true
            ~restarts:(r.restarts + 1)
        with
        | Ok nr ->
            nr.completed <- r.completed;
            nr.log <- r.log;
            nr.log_len <- r.log_len
        | Error e ->
            Quota.release st.quota ~tenant:r.tenant ~runs:r.r_spec.Spool.runs;
            log_line st "%s restart failed (%s)" r.key e;
            abort_campaign st r ("campaign aborted: cannot respawn runner: " ^ e)
      end
      else begin
        log_line st "%s runner died (%s); restart budget exhausted" r.key
          stat_str;
        abort_campaign st r "campaign aborted: runner kept dying"
      end

let handle_runner_event st r =
  match Runner.read_event r.event_r with
  | None -> reap_runner st r
  | Some (Runner.Want n) -> Sched.want st.sched ~key:r.key n
  | Some (Runner.Freed n) -> Sched.free st.sched ~key:r.key n
  | Some (Runner.Progress { run; line }) ->
      r.completed <- r.completed + 1;
      log_progress r (run, line);
      List.iter
        (fun c -> respond st c (Protocol.Progress { run; line }))
        (watchers st r.key)
  | Some (Runner.Finished { exit_code; line }) ->
      r.finished <- Some (exit_code, line);
      List.iter
        (fun c -> respond st c (Protocol.Summary { exit_code; line }))
        (watchers st r.key)

(* A runner reads exactly one grant per batch boundary, so Stop must be
   written once, not once per loop pass — repeated writes into the
   blocking grant pipe would fill it mid-batch and wedge the daemon. *)
let send_stop r =
  if not r.stop_sent then begin
    r.stop_sent <- true;
    ignore (Runner.send_grant r.grant_w Runner.Stop)
  end

let scheduler_pass st =
  if st.draining then
    (* Drain: runners exit at their next batch boundary, checkpointed.
       [send_stop] is a no-op for those already told. *)
    List.iter send_stop st.runners
  else
    List.iter
      (fun (key, n) ->
        match find_runner st key with
        | Some r ->
            if not (Runner.send_grant r.grant_w (Runner.Grant n)) then
              (* Runner gone; give the slots back now, the EOF follows. *)
              Sched.free st.sched ~key n
        | None -> Sched.free st.sched ~key n)
      (Sched.grants st.sched)

(* ---------------------------------------------------------------- *)
(* Requests                                                          *)
(* ---------------------------------------------------------------- *)

let campaign_status st ~tenant ~id =
  let key = key_of ~tenant ~id in
  match find_runner st key with
  | Some r ->
      Protocol.Status_is
        {
          state = "running";
          completed = r.completed;
          runs = r.r_spec.Spool.runs;
          exit_code = None;
        }
  | None -> (
      let dir = Spool.dir ~spool:st.cfg.spool ~tenant ~id in
      match Spool.read_result ~dir with
      | Ok outcome ->
          let exit_code =
            match outcome with Spool.Finished c -> Some c | Spool.Cancelled -> None
          in
          let runs =
            match Spool.read_manifest ~dir with
            | Ok spec -> spec.Spool.runs
            | Error _ -> 0
          in
          (* The checkpoint records what actually ran — an aborted or
             cancelled campaign must not report its plan as progress.
             Only a clean finish whose checkpoint is unreadable falls
             back to the plan. *)
          let completed =
            match Spool.completed_runs ~dir with
            | 0 when exit_code = Some 0 -> runs
            | n -> n
          in
          Protocol.Status_is
            { state = Spool.outcome_state outcome; completed; runs; exit_code }
      | Error _ ->
          if Sys.file_exists (Spool.manifest_path dir) then
            let runs =
              match Spool.read_manifest ~dir with
              | Ok spec -> spec.Spool.runs
              | Error _ -> 0
            in
            Protocol.Status_is
              {
                state = "interrupted";
                completed = Spool.completed_runs ~dir;
                runs;
                exit_code = None;
              }
          else
            Protocol.Status_is
              { state = "unknown"; completed = 0; runs = 0; exit_code = None })

let resume_interrupted st ~tenant ~id ~dir ~spec =
  match Quota.admit st.quota ~tenant ~runs:spec.Spool.runs with
  | Error reason -> Protocol.Rejected { reason }
  | Ok () -> (
      List.iter (fun n -> log_line st "repair: %s" n) (Spool.repair ~dir);
      match
        spawn_runner st ~tenant ~id ~dir ~spec ~resume:true
          ~disarm_storage:true ~restarts:0
      with
      | Ok _ -> Protocol.Accepted { id; state = "resumed" }
      | Error e ->
          Quota.release st.quota ~tenant ~runs:spec.Spool.runs;
          Protocol.Rejected { reason = "cannot spawn runner: " ^ e })

let handle_submit st ~tenant ~id ~spec =
  if st.draining then Protocol.Rejected { reason = "daemon is draining" }
  else
    let key = key_of ~tenant ~id in
    let dir = Spool.dir ~spool:st.cfg.spool ~tenant ~id in
    if Sys.file_exists (Spool.manifest_path dir) then
      match Spool.read_manifest ~dir with
      | Error e ->
          Protocol.Rejected { reason = "spooled manifest unreadable: " ^ e }
      | Ok existing ->
          if existing <> spec then
            Protocol.Rejected
              { reason = "campaign id already exists with a different spec" }
          else if find_runner st key <> None then
            (* Idempotent resubmit of a running campaign. *)
            Protocol.Accepted { id; state = "running" }
          else (
            match Spool.read_result ~dir with
            | Ok outcome ->
                Protocol.Accepted { id; state = Spool.outcome_state outcome }
            | Error _ -> resume_interrupted st ~tenant ~id ~dir ~spec)
    else
      match Spool.validate spec with
      | Error reason -> Protocol.Rejected { reason }
      | Ok () -> (
          match Quota.admit st.quota ~tenant ~runs:spec.Spool.runs with
          | Error reason -> Protocol.Rejected { reason }
          | Ok () -> (
              Spool.write_manifest ~dir spec;
              match
                spawn_runner st ~tenant ~id ~dir ~spec ~resume:false
                  ~disarm_storage:false ~restarts:0
              with
              | Ok _ -> Protocol.Accepted { id; state = "running" }
              | Error e ->
                  Quota.release st.quota ~tenant ~runs:spec.Spool.runs;
                  Protocol.Rejected { reason = "cannot spawn runner: " ^ e }))

let handle_stream st c ~tenant ~id ~from_run =
  let key = key_of ~tenant ~id in
  match find_runner st key with
  | Some r ->
      c.watching <- Some key;
      List.iter
        (fun (run, line) ->
          if run >= from_run then respond st c (Protocol.Progress { run; line }))
        (List.rev r.log);
      (match r.finished with
      | Some (exit_code, line) ->
          respond st c (Protocol.Summary { exit_code; line })
      | None -> ())
  | None -> (
      match Hashtbl.find_opt st.done_cache key with
      | Some d ->
          List.iter
            (fun (run, line) ->
              if run >= from_run then
                respond st c (Protocol.Progress { run; line }))
            (List.rev d.d_log);
          respond st c (Protocol.Summary { exit_code = d.d_exit; line = d.d_line })
      | None -> (
          let dir = Spool.dir ~spool:st.cfg.spool ~tenant ~id in
          match Spool.read_result ~dir with
          | Ok (Spool.Finished code) ->
              respond st c
                (Protocol.Summary { exit_code = code; line = "campaign finished" })
          | Ok Spool.Cancelled -> respond st c Protocol.Cancelled
          | Error _ ->
              respond st c
                (Protocol.Rejected { reason = "no such campaign: " ^ key })))

let handle_cancel st ~tenant ~id =
  let key = key_of ~tenant ~id in
  match find_runner st key with
  | Some r ->
      r.cancelling <- true;
      send_stop r;
      Protocol.Cancelled
  | None -> (
      let dir = Spool.dir ~spool:st.cfg.spool ~tenant ~id in
      match Spool.read_result ~dir with
      | Ok Spool.Cancelled -> Protocol.Cancelled
      | Ok (Spool.Finished _) ->
          Protocol.Rejected { reason = "campaign already finished" }
      | Error _ -> Protocol.Rejected { reason = "no such campaign: " ^ key })

let start_drain st reason =
  if not st.draining then begin
    st.draining <- true;
    log_line st "draining (%s): %d campaign(s) in flight" reason
      (List.length st.runners);
    List.iter send_stop st.runners
  end

let handle_request st c = function
  | Protocol.Ping -> respond st c Protocol.Pong
  | Protocol.Submit { tenant; id; spec } ->
      respond st c (handle_submit st ~tenant ~id ~spec)
  | Protocol.Status { tenant; id } -> respond st c (campaign_status st ~tenant ~id)
  | Protocol.Stream { tenant; id; from_run } ->
      handle_stream st c ~tenant ~id ~from_run
  | Protocol.Cancel { tenant; id } -> respond st c (handle_cancel st ~tenant ~id)
  | Protocol.Drain ->
      respond st c (Protocol.Draining { in_flight = List.length st.runners });
      start_drain st "drain request"

let handle_client_bytes st c =
  let buf = Bytes.create 65536 in
  match restart_on_eintr (fun () -> Unix.read c.c_fd buf 0 (Bytes.length buf)) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* Spurious wakeup on the non-blocking socket; nothing to do. *)
      ()
  | exception Unix.Unix_error _ -> detach st c
  | 0 -> detach st c
  | n ->
      Wire.feed c.dec (Bytes.sub_string buf 0 n);
      let rec drain_events () =
        if c.alive then
          match Wire.next c.dec with
          | None -> ()
          | Some (Wire.Corrupt msg) ->
              (* Fault isolation: a corrupt peer gets one error frame
                 and a close; the daemon keeps serving everyone else. *)
              respond st c (Protocol.Error_frame msg);
              detach st c
          | Some (Wire.Frame { verb; payload }) -> (
              match Protocol.request_of_frame ~verb ~payload with
              | Error msg ->
                  respond st c (Protocol.Error_frame msg);
                  detach st c
              | Ok req ->
                  handle_request st c req;
                  drain_events ())
      in
      drain_events ()

(* ---------------------------------------------------------------- *)
(* Startup recovery                                                  *)
(* ---------------------------------------------------------------- *)

let kill_stale_runner st dir =
  match Spool.read_pid ~dir with
  | None -> ()
  | Some pid ->
      (try
         Unix.kill pid Sys.sigkill;
         log_line st "killed stale runner pid %d (%s)" pid dir
       with Unix.Unix_error _ -> ());
      Spool.clear_pid ~dir

let recover_spool st =
  let entries, broken = Spool.scan ~spool:st.cfg.spool in
  List.iter
    (fun (dir, why) -> Printf.eprintf "szcd: spool: skipping %s: %s\n%!" dir why)
    broken;
  List.iter
    (fun (e : Spool.entry) ->
      match e.Spool.result with
      | Some _ -> ()
      | None ->
          kill_stale_runner st e.Spool.entry_dir;
          List.iter
            (fun n -> log_line st "repair: %s" n)
            (Spool.repair ~dir:e.Spool.entry_dir);
          (* The admission promise was made before the crash; a restart
             never drops it — force the reservation so the eventual
             release stays balanced. *)
          Quota.readmit st.quota ~tenant:e.Spool.tenant
            ~runs:e.Spool.spec.Spool.runs;
          match
            spawn_runner st ~tenant:e.Spool.tenant ~id:e.Spool.id
              ~dir:e.Spool.entry_dir ~spec:e.Spool.spec ~resume:true
              ~disarm_storage:true ~restarts:0
          with
          | Ok _ -> ()
          | Error err ->
              (* Leave the campaign interrupted in the spool: the next
                 daemon start (or an idempotent resubmit) retries it. *)
              Quota.release st.quota ~tenant:e.Spool.tenant
                ~runs:e.Spool.spec.Spool.runs;
              Printf.eprintf "szcd: spool: cannot resume %s: %s\n%!"
                e.Spool.entry_dir err)
    entries

(* ---------------------------------------------------------------- *)
(* Main loop                                                         *)
(* ---------------------------------------------------------------- *)

let drain_requested = ref false

let select_with_flags read_fds write_fds timeout =
  try Unix.select read_fds write_fds [] timeout
  with Unix.Unix_error (Unix.EINTR, _, _) ->
    (* A signal landed (SIGTERM → drain flag); surface to the loop. *)
    ([], [], [])

let run cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  drain_requested := false;
  let on_term = Sys.Signal_handle (fun _ -> drain_requested := true) in
  Sys.set_signal Sys.sigterm on_term;
  Sys.set_signal Sys.sigint on_term;
  let st =
    {
      cfg;
      quota = Quota.create cfg.limits;
      sched = Sched.create ~quantum:cfg.quantum ~slots:cfg.slots;
      listen_fd = None;
      clients = [];
      runners = [];
      done_cache = Hashtbl.create 64;
      done_order = Queue.create ();
      draining = false;
    }
  in
  match
    mkdir_p cfg.spool;
    Sys.is_directory cfg.spool
  with
  | false | (exception Sys_error _) | (exception Unix.Unix_error _) ->
      Printf.eprintf "szcd: spool %s is unusable\n%!" cfg.spool;
      3
  | true -> (
      recover_spool st;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
        Unix.bind fd (Unix.ADDR_UNIX cfg.socket);
        Unix.listen fd 64
      with
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "szcd: cannot listen on %s: %s\n%!" cfg.socket
            (Unix.error_message e);
          (try Unix.close fd with Unix.Unix_error _ -> ());
          3
      | () ->
          st.listen_fd <- Some fd;
          log_line st "listening on %s (spool %s, %d slots, quantum %d)"
            cfg.socket cfg.spool cfg.slots cfg.quantum;
          let running = ref true in
          while !running do
            if !drain_requested then start_drain st "signal";
            if st.draining && st.runners = [] then running := false
            else begin
              scheduler_pass st;
              st.clients <- List.filter (fun c -> c.alive) st.clients;
              let fds =
                (match st.listen_fd with
                | Some l when not st.draining -> [ l ]
                | _ -> [])
                @ List.map (fun c -> c.c_fd) st.clients
                @ List.map (fun r -> r.event_r) st.runners
              in
              let wfds =
                List.filter_map
                  (fun c ->
                    if c.alive && Buffer.length c.outbuf > 0 then Some c.c_fd
                    else None)
                  st.clients
              in
              let ready, wready, _ = select_with_flags fds wfds 0.25 in
              List.iter
                (fun fd_ready ->
                  match
                    List.find_opt
                      (fun c -> c.alive && c.c_fd = fd_ready)
                      st.clients
                  with
                  | Some c -> flush_client st c
                  | None -> ())
                wready;
              List.iter
                (fun fd_ready ->
                  if Some fd_ready = st.listen_fd then (
                    match restart_on_eintr (fun () -> Unix.accept fd_ready) with
                    | exception Unix.Unix_error _ -> ()
                    | cfd, _ ->
                        (* Non-blocking: a wedged client can never
                           stall the event loop on a write. *)
                        Unix.set_nonblock cfd;
                        let c =
                          {
                            c_fd = cfd;
                            dec = Wire.create ~expect_greeting:true;
                            watching = None;
                            alive = true;
                            outbuf = Buffer.create 256;
                          }
                        in
                        st.clients <- st.clients @ [ c ];
                        client_write st c Wire.greeting)
                  else
                    match
                      List.find_opt
                        (fun c -> c.alive && c.c_fd = fd_ready)
                        st.clients
                    with
                    | Some c -> handle_client_bytes st c
                    | None -> (
                        match
                          List.find_opt
                            (fun r -> r.event_r = fd_ready)
                            st.runners
                        with
                        | Some r -> handle_runner_event st r
                        | None -> ()))
                ready
            end
          done;
          (match st.listen_fd with
          | Some l -> ( try Unix.close l with Unix.Unix_error _ -> ())
          | None -> ());
          (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
          List.iter (fun c -> detach st c) st.clients;
          log_line st "drained cleanly";
          0)
