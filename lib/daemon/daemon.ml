module Ops = Stz_telemetry.Ops
module Oplog = Stz_telemetry.Oplog
module Json = Stz_telemetry.Json

type config = {
  socket : string;
  spool : string;
  limits : Quota.limits;
  slots : int;
  quantum : int;
  verbose : bool;
  oplog : string option;  (** rotating ops JSONL; [None] = off *)
  ops_export : string option;  (** Prometheus textfile; [None] = off *)
}

let default_config ~socket ~spool =
  {
    socket;
    spool;
    limits = Quota.default_limits;
    slots = 4;
    quantum = 2;
    verbose = false;
    oplog = None;
    ops_export = None;
  }

let version = "szcd/0.8"

let max_restarts = 3

(* Transient fork failures (pid/memory pressure) are retried this many
   times with doubling backoff before the spawn is reported failed. *)
let max_fork_retries = 3

(* A client that stops reading gets this much buffered output before it
   is declared wedged and detached; its campaign keeps running. *)
let max_client_outbuf = 1 lsl 20

(* Retention bounds for a long-lived daemon: progress lines kept per
   campaign for late [stream] replay, and finished campaigns remembered
   in memory (older ones still answer from the spool). *)
let max_log_lines = 512
let max_done_cache = 256

type client = {
  c_fd : Unix.file_descr;
  mutable dec : Wire.decoder;
  mutable watching : string option;  (** runner key *)
  mutable alive : bool;
  outbuf : Buffer.t;  (** unsent frames; flushed on select writability *)
  mutable watch_ms : int;  (** stats subscription period; 0 = none *)
  mutable watch_due : float;  (** wall clock of the next stats frame *)
}

type runner_state = {
  key : string;
  tenant : string;
  id : string;
  r_dir : string;
  r_spec : Spool.spec;
  pid : int;
  grant_w : Unix.file_descr;
  event_r : Unix.file_descr;
  mutable completed : int;
  mutable log : (int * string) list;  (** newest first, capped *)
  mutable log_len : int;
  mutable finished : (int * string) option;  (** Finished event payload *)
  mutable cancelling : bool;
  mutable stop_sent : bool;  (** a Stop grant is already queued *)
  mutable restarts : int;
}

(* A finished campaign this daemon still remembers: lets status/stream
   answer without a runner. Spool results survive restarts; this cache
   additionally keeps the summary line and the progress log. *)
type done_state = { d_exit : int; d_line : string; d_log : (int * string) list }

type state = {
  cfg : config;
  quota : Quota.t;
  sched : Sched.t;
  mutable listen_fd : Unix.file_descr option;
  mutable clients : client list;
  mutable runners : runner_state list;
  done_cache : (string, done_state) Hashtbl.t;
  done_order : string Queue.t;  (** insertion order, for eviction *)
  mutable draining : bool;
  (* The operational plane. Everything below is wall-clock-fed and
     write-only from the campaign plane's point of view: no campaign
     decision ever reads it, so enabling it cannot change a single
     artifact byte. *)
  ops : Ops.t;
  mutable oplog : Oplog.t option;
  started_at : float;
  mutable last_drain : string option;  (** ISO-8601, from the stamp file *)
  mutable export_due : float;
}

(* ---------------------------------------------------------------- *)
(* Ops plane                                                         *)
(* ---------------------------------------------------------------- *)

let now_ms () = int_of_float (Unix.gettimeofday () *. 1000.)

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let ops_event st ev fields =
  match st.oplog with
  | None -> ()
  | Some l -> Oplog.event l ~ts_ms:(now_ms ()) ~ev fields

let last_drain_path st = Filename.concat st.cfg.spool "last-drain"

let read_last_drain st =
  match open_in (last_drain_path st) with
  | exception Sys_error _ -> None
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      close_in_noerr ic;
      if line = "" then None else Some line

let write_last_drain st =
  let stamp = iso8601 (Unix.gettimeofday ()) in
  st.last_drain <- Some stamp;
  try Stz_store.Artifact.write_file (last_drain_path st) (stamp ^ "\n")
  with Sys_error _ | Unix.Unix_error _ -> ()

(* Gauges that mirror live structures; refreshed before every snapshot
   or export rather than on every mutation. *)
let refresh_gauges st =
  let lim = Quota.limits st.quota in
  Ops.set_gauge st.ops "sched.slots.busy" (Sched.busy st.sched);
  Ops.set_gauge st.ops "sched.slots.total" (Sched.slots st.sched);
  Ops.set_gauge st.ops "sched.flows" (List.length (Sched.flows st.sched));
  Ops.set_gauge st.ops "sched.deficit.total"
    (List.fold_left
       (fun acc f -> acc + f.Sched.f_deficit)
       0 (Sched.flows st.sched));
  Ops.set_gauge st.ops "quota.campaigns.inflight" (Quota.in_flight st.quota);
  Ops.set_gauge st.ops "quota.runs.inflight" (Quota.global_runs st.quota);
  Ops.set_gauge st.ops "quota.runs.budget" lim.Quota.global_run_budget;
  Ops.set_gauge st.ops "quota.tenants" (List.length (Quota.usage st.quota));
  Ops.set_gauge st.ops "clients.connected"
    (List.length (List.filter (fun c -> c.alive) st.clients));
  Ops.set_gauge st.ops "runners.live" (List.length st.runners);
  Ops.set_gauge st.ops "daemon.draining" (if st.draining then 1 else 0);
  Ops.set_gauge st.ops "daemon.uptime_ms"
    (int_of_float ((Unix.gettimeofday () -. st.started_at) *. 1000.))

let export_ops st =
  match st.cfg.ops_export with
  | None -> ()
  | Some path -> (
      refresh_gauges st;
      try Stz_store.Artifact.write_file path (Ops.to_prometheus st.ops)
      with Sys_error _ | Unix.Unix_error _ -> ())

let log_line st fmt =
  Printf.ksprintf
    (fun s -> if st.cfg.verbose then Printf.eprintf "szcd: %s\n%!" s)
    fmt

let key_of ~tenant ~id = tenant ^ "/" ^ id

let rec mkdir_p path =
  if path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ---------------------------------------------------------------- *)
(* Client IO                                                         *)
(* ---------------------------------------------------------------- *)

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

let detach st c =
  if c.alive then begin
    c.alive <- false;
    Ops.incr st.ops "client.detach";
    (match c.watching with
    | Some key -> log_line st "client detached from %s (campaign keeps running)" key
    | None -> ());
    c.watching <- None;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ())
  end

(* A dead or wedged client never takes the daemon down. Client sockets
   are non-blocking: what the kernel will not take now stays in
   [c.outbuf] and is flushed when select reports writability; a client
   that stops reading overflows the bound and is detached (its campaign
   keeps running). EPIPE / ECONNRESET likewise just detach. *)
let flush_client st c =
  (if c.alive && Buffer.length c.outbuf > 0 then
     let data = Buffer.contents c.outbuf in
     let len = String.length data in
     let rec go off =
       if off >= len then Buffer.clear c.outbuf
       else
         match Unix.write_substring c.c_fd data off (len - off) with
         | n -> go (off + n)
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
           ->
             (* Socket buffer full: keep the unsent tail for later. *)
             let rest = String.sub data off (len - off) in
             Buffer.clear c.outbuf;
             Buffer.add_string c.outbuf rest
         | exception Unix.Unix_error _ -> detach st c
     in
     go 0);
  let queued = if c.alive then Buffer.length c.outbuf else 0 in
  if queued > Ops.gauge st.ops "client.outbuf.hwm" then
    Ops.set_gauge st.ops "client.outbuf.hwm" queued;
  if c.alive && queued > max_client_outbuf then begin
    log_line st "client not reading (%d bytes queued); detaching" queued;
    Ops.incr st.ops "client.wedged";
    ops_event st "client.wedged" [ ("queued", Json.Int queued) ];
    detach st c
  end

let client_write st c bytes =
  if c.alive then begin
    Buffer.add_string c.outbuf bytes;
    flush_client st c
  end

let respond st c resp = client_write st c (Protocol.response_to_frame resp)

(* ---------------------------------------------------------------- *)
(* Runners                                                           *)
(* ---------------------------------------------------------------- *)

let watchers st key =
  List.filter (fun c -> c.alive && c.watching = Some key) st.clients

(* Fork under pid/memory pressure (EAGAIN/ENOMEM) is transient more
   often than not; retry briefly like [Parallel.spawn] does, then
   report failure so the caller can reject or fail one campaign instead
   of crashing the daemon. *)
let fork_with_retry () =
  let rec go attempt =
    match Unix.fork () with
    | pid -> Ok pid
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.ENOMEM) as e, _, _) ->
        if attempt >= max_fork_retries then
          Error (Printf.sprintf "fork: %s" (Unix.error_message e))
        else begin
          (try ignore (Unix.select [] [] [] (0.05 *. float_of_int (1 lsl attempt)))
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go (attempt + 1)
        end
  in
  go 0

let spawn_runner st ~tenant ~id ~dir ~spec ~resume ~disarm_storage ~restarts =
  let grant_r, grant_w = Unix.pipe () in
  let event_r, event_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match fork_with_retry () with
  | Error e ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ grant_r; grant_w; event_r; event_w ];
      Error e
  | Ok 0 ->
      (* Child: drop every daemon fd so a dead daemon leaves no open
         client sockets behind, then become the runner. *)
      (try Unix.close grant_w with Unix.Unix_error _ -> ());
      (try Unix.close event_r with Unix.Unix_error _ -> ());
      (match st.listen_fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      (* The oplog fd too: the runner must not pin a rotated-away log
         file open, and only the daemon process may write records. *)
      (match st.oplog with Some l -> Oplog.close l | None -> ());
      List.iter
        (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
        st.clients;
      List.iter
        (fun r ->
          (try Unix.close r.grant_w with Unix.Unix_error _ -> ());
          try Unix.close r.event_r with Unix.Unix_error _ -> ())
        st.runners;
      Runner.exec ~grant_r ~event_w ~dir ~spec ~resume ~disarm_storage
  | Ok pid ->
      Unix.close grant_r;
      Unix.close event_w;
      Spool.write_pid ~dir pid;
      let key = key_of ~tenant ~id in
      Sched.register st.sched ~key;
      let r =
        {
          key;
          tenant;
          id;
          r_dir = dir;
          r_spec = spec;
          pid;
          grant_w;
          event_r;
          completed = 0;
          log = [];
          log_len = 0;
          finished = None;
          cancelling = false;
          stop_sent = false;
          restarts;
        }
      in
      st.runners <- st.runners @ [ r ];
      Ops.incr st.ops "runner.spawn";
      if resume then Ops.incr st.ops "runner.spawn.resume";
      ops_event st "runner.spawn"
        [
          ("key", Json.String key);
          ("pid", Json.Int pid);
          ("resume", Json.Bool resume);
          ("restarts", Json.Int restarts);
        ];
      log_line st "spawned runner pid %d for %s (resume=%b)" pid key resume;
      Ok r

let find_runner st key = List.find_opt (fun r -> r.key = key) st.runners

(* Bounded memory of finished campaigns: evict oldest-first once over
   the cap; evicted campaigns still answer status/stream from their
   spool result, just without the in-memory progress replay. *)
let remember_done st key d =
  if not (Hashtbl.mem st.done_cache key) then Queue.push key st.done_order;
  Hashtbl.replace st.done_cache key d;
  while
    Hashtbl.length st.done_cache > max_done_cache
    && not (Queue.is_empty st.done_order)
  do
    Hashtbl.remove st.done_cache (Queue.pop st.done_order)
  done

(* Newest-first prepend with amortized-O(1) truncation to the cap. *)
let log_progress r entry =
  r.log <- entry :: r.log;
  r.log_len <- r.log_len + 1;
  if r.log_len > 2 * max_log_lines then begin
    r.log <- List.filteri (fun i _ -> i < max_log_lines) r.log;
    r.log_len <- max_log_lines
  end

let release_runner st r =
  Sched.unregister st.sched ~key:r.key;
  Quota.release st.quota ~tenant:r.tenant ~runs:r.r_spec.Spool.runs;
  (try Unix.close r.grant_w with Unix.Unix_error _ -> ());
  (try Unix.close r.event_r with Unix.Unix_error _ -> ());
  Spool.clear_pid ~dir:r.r_dir;
  st.runners <- List.filter (fun x -> x.key <> r.key) st.runners

let abort_campaign st r line =
  Spool.write_result ~dir:r.r_dir (Spool.Finished 3);
  remember_done st r.key { d_exit = 3; d_line = line; d_log = r.log };
  Ops.incr st.ops "runner.abort";
  ops_event st "runner.abort"
    [ ("key", Json.String r.key); ("line", Json.String line) ];
  List.iter
    (fun c -> respond st c (Protocol.Summary { exit_code = 3; line }))
    (watchers st r.key)

(* EOF on the event pipe: the runner exited. Decide what that means. *)
let reap_runner st r =
  let status =
    match restart_on_eintr (fun () -> Unix.waitpid [] r.pid) with
    | _, s -> Some s
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
  in
  release_runner st r;
  let finished_payload =
    match r.finished with
    | Some (code, line) -> Some (code, line)
    | None -> (
        (* The Finished event can be lost to a crash after the result
           record was already durable; trust the spool. *)
        match Spool.read_result ~dir:r.r_dir with
        | Ok (Spool.Finished code) -> Some (code, "campaign finished")
        | Ok Spool.Cancelled -> Some (1, "campaign cancelled")
        | Error _ -> None)
  in
  match finished_payload with
  | Some (code, line) ->
      remember_done st r.key { d_exit = code; d_line = line; d_log = r.log };
      Ops.incr st.ops
        (if code = 0 then "campaign.finished.ok" else "campaign.finished.fail");
      ops_event st "campaign.finished"
        [ ("key", Json.String r.key); ("exit_code", Json.Int code) ];
      log_line st "%s finished (exit %d)" r.key code
  | None when r.cancelling ->
      Spool.write_result ~dir:r.r_dir Spool.Cancelled;
      remember_done st r.key
        { d_exit = 1; d_line = "campaign cancelled"; d_log = r.log };
      Ops.incr st.ops "campaign.cancelled";
      ops_event st "campaign.cancelled" [ ("key", Json.String r.key) ];
      List.iter (fun c -> respond st c Protocol.Cancelled) (watchers st r.key);
      log_line st "%s cancelled" r.key
  | None when st.draining ->
      (* Drained: checkpointed and resumable; the next daemon picks it
         up from the spool. *)
      Ops.incr st.ops "runner.drained";
      ops_event st "runner.drained" [ ("key", Json.String r.key) ];
      log_line st "%s drained (checkpointed, resumable)" r.key
  | None ->
      (* Unexpected death (crash, OOM-kill, chaos). Restart from the
         checkpoint, faults disarmed — bounded, then fail the
         campaign. *)
      let stat_str =
        match status with
        | Some (Unix.WEXITED n) -> Printf.sprintf "exit %d" n
        | Some (Unix.WSIGNALED n) -> Printf.sprintf "signal %d" n
        | Some (Unix.WSTOPPED n) -> Printf.sprintf "stopped %d" n
        | None -> "unknown status"
      in
      if r.restarts < max_restarts then begin
        Ops.incr st.ops "runner.restart";
        ops_event st "runner.restart"
          [
            ("key", Json.String r.key);
            ("status", Json.String stat_str);
            ("attempt", Json.Int (r.restarts + 1));
          ];
        log_line st "%s runner died (%s); restarting (%d/%d)" r.key stat_str
          (r.restarts + 1) max_restarts;
        (* The admission promise was made at submit time; a restart
           never drops it. Force the reservation so the release above
           stays balanced and the budget reflects real in-flight work. *)
        Quota.readmit st.quota ~tenant:r.tenant ~runs:r.r_spec.Spool.runs;
        let repairs = Spool.repair ~dir:r.r_dir in
        Ops.incr st.ops ~by:(List.length repairs) "spool.repair";
        match
          spawn_runner st ~tenant:r.tenant ~id:r.id ~dir:r.r_dir
            ~spec:r.r_spec ~resume:true ~disarm_storage:true
            ~restarts:(r.restarts + 1)
        with
        | Ok nr ->
            nr.completed <- r.completed;
            nr.log <- r.log;
            nr.log_len <- r.log_len
        | Error e ->
            Quota.release st.quota ~tenant:r.tenant ~runs:r.r_spec.Spool.runs;
            log_line st "%s restart failed (%s)" r.key e;
            abort_campaign st r ("campaign aborted: cannot respawn runner: " ^ e)
      end
      else begin
        log_line st "%s runner died (%s); restart budget exhausted" r.key
          stat_str;
        abort_campaign st r "campaign aborted: runner kept dying"
      end

let handle_runner_event st r =
  match Runner.read_event r.event_r with
  | None -> reap_runner st r
  | Some (Runner.Want n) -> Sched.want st.sched ~key:r.key n
  | Some (Runner.Freed n) -> Sched.free st.sched ~key:r.key n
  | Some (Runner.Progress { run; line }) ->
      r.completed <- r.completed + 1;
      log_progress r (run, line);
      List.iter
        (fun c -> respond st c (Protocol.Progress { run; line }))
        (watchers st r.key)
  | Some (Runner.Finished { exit_code; line }) ->
      r.finished <- Some (exit_code, line);
      List.iter
        (fun c -> respond st c (Protocol.Summary { exit_code; line }))
        (watchers st r.key)

(* A runner reads exactly one grant per batch boundary, so Stop must be
   written once, not once per loop pass — repeated writes into the
   blocking grant pipe would fill it mid-batch and wedge the daemon. *)
let send_stop r =
  if not r.stop_sent then begin
    r.stop_sent <- true;
    ignore (Runner.send_grant r.grant_w Runner.Stop)
  end

let scheduler_pass st =
  if st.draining then
    (* Drain: runners exit at their next batch boundary, checkpointed.
       [send_stop] is a no-op for those already told. *)
    List.iter send_stop st.runners
  else
    List.iter
      (fun (key, n) ->
        Ops.incr st.ops ~by:n "sched.granted";
        Ops.observe st.ops "sched.batch" n;
        match find_runner st key with
        | Some r ->
            if not (Runner.send_grant r.grant_w (Runner.Grant n)) then
              (* Runner gone; give the slots back now, the EOF follows. *)
              Sched.free st.sched ~key n
        | None -> Sched.free st.sched ~key n)
      (Sched.grants st.sched)

(* ---------------------------------------------------------------- *)
(* Ops snapshots                                                     *)
(* ---------------------------------------------------------------- *)

let daemon_info st =
  let uptime =
    int_of_float ((Unix.gettimeofday () -. st.started_at) *. 1000.)
  in
  [ ("version", version); ("uptime_ms", string_of_int uptime) ]
  @ match st.last_drain with Some t -> [ ("last_drain", t) ] | None -> []

let build_stats st =
  refresh_gauges st;
  let flows = Sched.flows st.sched in
  let flow_for key = List.find_opt (fun f -> f.Sched.f_key = key) flows in
  let tenants = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let held, deficit =
        match flow_for r.key with
        | Some f -> (f.Sched.f_held, f.Sched.f_deficit)
        | None -> (0, 0)
      in
      let row =
        match Hashtbl.find_opt tenants r.tenant with
        | Some row -> row
        | None ->
            let row =
              ref
                {
                  Protocol.tr_tenant = r.tenant;
                  tr_active = 0;
                  tr_queued = 0;
                  tr_completed = 0;
                  tr_runs = 0;
                  tr_held = 0;
                  tr_deficit = 0;
                }
            in
            Hashtbl.add tenants r.tenant row;
            row
      in
      let v = !row in
      row :=
        {
          v with
          Protocol.tr_active = (v.Protocol.tr_active + if held > 0 then 1 else 0);
          tr_queued = (v.Protocol.tr_queued + if held = 0 then 1 else 0);
          tr_completed = v.Protocol.tr_completed + r.completed;
          tr_runs = v.Protocol.tr_runs + r.r_spec.Spool.runs;
          tr_held = v.Protocol.tr_held + held;
          tr_deficit = v.Protocol.tr_deficit + deficit;
        })
    st.runners;
  let rows =
    Hashtbl.fold (fun _ row acc -> !row :: acc) tenants []
    |> List.sort (fun a b ->
           String.compare a.Protocol.tr_tenant b.Protocol.tr_tenant)
  in
  {
    Protocol.s_version = version;
    s_uptime_ms = int_of_float ((Unix.gettimeofday () -. st.started_at) *. 1000.);
    s_draining = st.draining;
    s_slots_busy = Sched.busy st.sched;
    s_slots_total = Sched.slots st.sched;
    s_tenants = rows;
    s_counters = Ops.counters st.ops;
    s_gauges = Ops.gauges st.ops;
    s_hists = Ops.histograms st.ops;
  }

(* ---------------------------------------------------------------- *)
(* Requests                                                          *)
(* ---------------------------------------------------------------- *)

let campaign_status st ~tenant ~id =
  let key = key_of ~tenant ~id in
  let info = daemon_info st in
  match find_runner st key with
  | Some r ->
      Protocol.Status_is
        {
          state = "running";
          completed = r.completed;
          runs = r.r_spec.Spool.runs;
          exit_code = None;
          info;
        }
  | None -> (
      let dir = Spool.dir ~spool:st.cfg.spool ~tenant ~id in
      match Spool.read_result ~dir with
      | Ok outcome ->
          let exit_code =
            match outcome with Spool.Finished c -> Some c | Spool.Cancelled -> None
          in
          let runs =
            match Spool.read_manifest ~dir with
            | Ok spec -> spec.Spool.runs
            | Error _ -> 0
          in
          (* The checkpoint records what actually ran — an aborted or
             cancelled campaign must not report its plan as progress.
             Only a clean finish whose checkpoint is unreadable falls
             back to the plan. *)
          let completed =
            match Spool.completed_runs ~dir with
            | 0 when exit_code = Some 0 -> runs
            | n -> n
          in
          Protocol.Status_is
            {
              state = Spool.outcome_state outcome;
              completed;
              runs;
              exit_code;
              info;
            }
      | Error _ ->
          if Sys.file_exists (Spool.manifest_path dir) then
            let runs =
              match Spool.read_manifest ~dir with
              | Ok spec -> spec.Spool.runs
              | Error _ -> 0
            in
            Protocol.Status_is
              {
                state = "interrupted";
                completed = Spool.completed_runs ~dir;
                runs;
                exit_code = None;
                info;
              }
          else
            Protocol.Status_is
              { state = "unknown"; completed = 0; runs = 0; exit_code = None; info })

let reject_admission st ~tenant why reason =
  Ops.incr st.ops ("admit.reject." ^ Quota.reject_key why);
  ops_event st "admit.reject"
    [
      ("tenant", Json.String tenant);
      ("why", Json.String (Quota.reject_key why));
    ];
  Protocol.Rejected { reason }

let resume_interrupted st ~tenant ~id ~dir ~spec =
  match Quota.admit st.quota ~tenant ~runs:spec.Spool.runs with
  | Error (why, reason) -> reject_admission st ~tenant why reason
  | Ok () -> (
      Ops.incr st.ops "admit.ok";
      let repairs = Spool.repair ~dir in
      Ops.incr st.ops ~by:(List.length repairs) "spool.repair";
      List.iter (fun n -> log_line st "repair: %s" n) repairs;
      match
        spawn_runner st ~tenant ~id ~dir ~spec ~resume:true
          ~disarm_storage:true ~restarts:0
      with
      | Ok _ -> Protocol.Accepted { id; state = "resumed" }
      | Error e ->
          Quota.release st.quota ~tenant ~runs:spec.Spool.runs;
          Protocol.Rejected { reason = "cannot spawn runner: " ^ e })

let handle_submit st ~tenant ~id ~spec =
  if st.draining then Protocol.Rejected { reason = "daemon is draining" }
  else
    let key = key_of ~tenant ~id in
    let dir = Spool.dir ~spool:st.cfg.spool ~tenant ~id in
    if Sys.file_exists (Spool.manifest_path dir) then
      match Spool.read_manifest ~dir with
      | Error e ->
          Protocol.Rejected { reason = "spooled manifest unreadable: " ^ e }
      | Ok existing ->
          if existing <> spec then
            Protocol.Rejected
              { reason = "campaign id already exists with a different spec" }
          else if find_runner st key <> None then
            (* Idempotent resubmit of a running campaign. *)
            Protocol.Accepted { id; state = "running" }
          else (
            match Spool.read_result ~dir with
            | Ok outcome ->
                Protocol.Accepted { id; state = Spool.outcome_state outcome }
            | Error _ -> resume_interrupted st ~tenant ~id ~dir ~spec)
    else
      match Spool.validate spec with
      | Error reason -> Protocol.Rejected { reason }
      | Ok () -> (
          match Quota.admit st.quota ~tenant ~runs:spec.Spool.runs with
          | Error (why, reason) -> reject_admission st ~tenant why reason
          | Ok () -> (
              Ops.incr st.ops "admit.ok";
              ops_event st "admit.ok"
                [
                  ("tenant", Json.String tenant);
                  ("id", Json.String id);
                  ("runs", Json.Int spec.Spool.runs);
                ];
              Spool.write_manifest ~dir spec;
              match
                spawn_runner st ~tenant ~id ~dir ~spec ~resume:false
                  ~disarm_storage:false ~restarts:0
              with
              | Ok _ -> Protocol.Accepted { id; state = "running" }
              | Error e ->
                  Quota.release st.quota ~tenant ~runs:spec.Spool.runs;
                  Protocol.Rejected { reason = "cannot spawn runner: " ^ e }))

let handle_stream st c ~tenant ~id ~from_run =
  let key = key_of ~tenant ~id in
  match find_runner st key with
  | Some r ->
      c.watching <- Some key;
      List.iter
        (fun (run, line) ->
          if run >= from_run then respond st c (Protocol.Progress { run; line }))
        (List.rev r.log);
      (match r.finished with
      | Some (exit_code, line) ->
          respond st c (Protocol.Summary { exit_code; line })
      | None -> ())
  | None -> (
      match Hashtbl.find_opt st.done_cache key with
      | Some d ->
          List.iter
            (fun (run, line) ->
              if run >= from_run then
                respond st c (Protocol.Progress { run; line }))
            (List.rev d.d_log);
          respond st c (Protocol.Summary { exit_code = d.d_exit; line = d.d_line })
      | None -> (
          let dir = Spool.dir ~spool:st.cfg.spool ~tenant ~id in
          match Spool.read_result ~dir with
          | Ok (Spool.Finished code) ->
              respond st c
                (Protocol.Summary { exit_code = code; line = "campaign finished" })
          | Ok Spool.Cancelled -> respond st c Protocol.Cancelled
          | Error _ ->
              respond st c
                (Protocol.Rejected { reason = "no such campaign: " ^ key })))

let handle_cancel st ~tenant ~id =
  let key = key_of ~tenant ~id in
  match find_runner st key with
  | Some r ->
      r.cancelling <- true;
      send_stop r;
      Protocol.Cancelled
  | None -> (
      let dir = Spool.dir ~spool:st.cfg.spool ~tenant ~id in
      match Spool.read_result ~dir with
      | Ok Spool.Cancelled -> Protocol.Cancelled
      | Ok (Spool.Finished _) ->
          Protocol.Rejected { reason = "campaign already finished" }
      | Error _ -> Protocol.Rejected { reason = "no such campaign: " ^ key })

let start_drain st reason =
  if not st.draining then begin
    st.draining <- true;
    Ops.incr st.ops "drain.start";
    ops_event st "drain.start"
      [
        ("reason", Json.String reason);
        ("in_flight", Json.Int (List.length st.runners));
      ];
    log_line st "draining (%s): %d campaign(s) in flight" reason
      (List.length st.runners);
    List.iter send_stop st.runners
  end

let request_verb = function
  | Protocol.Ping -> "ping"
  | Protocol.Submit _ -> "submit"
  | Protocol.Status _ -> "status"
  | Protocol.Stream _ -> "stream"
  | Protocol.Cancel _ -> "cancel"
  | Protocol.Drain -> "drain"
  | Protocol.Stats -> "stats"
  | Protocol.Watch _ -> "watch"

let handle_request st c req =
  Ops.incr st.ops ("wire.rx." ^ request_verb req);
  match req with
  | Protocol.Ping -> respond st c Protocol.Pong
  | Protocol.Submit { tenant; id; spec } ->
      respond st c (handle_submit st ~tenant ~id ~spec)
  | Protocol.Status { tenant; id } -> respond st c (campaign_status st ~tenant ~id)
  | Protocol.Stream { tenant; id; from_run } ->
      handle_stream st c ~tenant ~id ~from_run
  | Protocol.Cancel { tenant; id } -> respond st c (handle_cancel st ~tenant ~id)
  | Protocol.Drain ->
      respond st c (Protocol.Draining { in_flight = List.length st.runners });
      start_drain st "drain request"
  | Protocol.Stats -> respond st c (Protocol.Stats_is (build_stats st))
  | Protocol.Watch { interval_ms } ->
      c.watch_ms <- interval_ms;
      c.watch_due <- Unix.gettimeofday ();
      Ops.incr st.ops "watch.subscribe"

(* Deliver due stats frames to watch subscribers; one snapshot is
   built per pass and shared by every due subscriber. *)
let watch_pass st =
  let due =
    List.filter
      (fun c ->
        c.alive && c.watch_ms > 0 && Unix.gettimeofday () >= c.watch_due)
      st.clients
  in
  if due <> [] then begin
    let snap = Protocol.Stats_is (build_stats st) in
    List.iter
      (fun c ->
        c.watch_due <-
          Unix.gettimeofday () +. (float_of_int c.watch_ms /. 1000.);
        respond st c snap;
        Ops.incr st.ops "watch.frames")
      due
  end

let handle_client_bytes st c =
  let buf = Bytes.create 65536 in
  match restart_on_eintr (fun () -> Unix.read c.c_fd buf 0 (Bytes.length buf)) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* Spurious wakeup on the non-blocking socket; nothing to do. *)
      ()
  | exception Unix.Unix_error _ -> detach st c
  | 0 -> detach st c
  | n ->
      Wire.feed c.dec (Bytes.sub_string buf 0 n);
      let rec drain_events () =
        if c.alive then
          match Wire.next c.dec with
          | None -> ()
          | Some (Wire.Corrupt msg) ->
              (* Fault isolation: a corrupt peer gets one error frame
                 and a close; the daemon keeps serving everyone else. *)
              Ops.incr st.ops "wire.error.corrupt";
              respond st c (Protocol.Error_frame msg);
              detach st c
          | Some (Wire.Frame { verb; payload }) -> (
              match Protocol.request_of_frame ~verb ~payload with
              | Error msg ->
                  Ops.incr st.ops "wire.error.decode";
                  respond st c (Protocol.Error_frame msg);
                  detach st c
              | Ok req ->
                  handle_request st c req;
                  drain_events ())
      in
      drain_events ()

(* ---------------------------------------------------------------- *)
(* Startup recovery                                                  *)
(* ---------------------------------------------------------------- *)

let kill_stale_runner st dir =
  match Spool.read_pid ~dir with
  | None -> ()
  | Some pid ->
      (try
         Unix.kill pid Sys.sigkill;
         Ops.incr st.ops "runner.stale_kill";
         ops_event st "runner.stale_kill" [ ("pid", Json.Int pid) ];
         log_line st "killed stale runner pid %d (%s)" pid dir
       with Unix.Unix_error _ -> ());
      Spool.clear_pid ~dir

let recover_spool st =
  let entries, broken = Spool.scan ~spool:st.cfg.spool in
  List.iter
    (fun (dir, why) -> Printf.eprintf "szcd: spool: skipping %s: %s\n%!" dir why)
    broken;
  List.iter
    (fun (e : Spool.entry) ->
      match e.Spool.result with
      | Some _ -> ()
      | None ->
          kill_stale_runner st e.Spool.entry_dir;
          Ops.incr st.ops "spool.recovered";
          let repairs = Spool.repair ~dir:e.Spool.entry_dir in
          Ops.incr st.ops ~by:(List.length repairs) "spool.repair";
          List.iter (fun n -> log_line st "repair: %s" n) repairs;
          (* The admission promise was made before the crash; a restart
             never drops it — force the reservation so the eventual
             release stays balanced. *)
          Quota.readmit st.quota ~tenant:e.Spool.tenant
            ~runs:e.Spool.spec.Spool.runs;
          match
            spawn_runner st ~tenant:e.Spool.tenant ~id:e.Spool.id
              ~dir:e.Spool.entry_dir ~spec:e.Spool.spec ~resume:true
              ~disarm_storage:true ~restarts:0
          with
          | Ok _ -> ()
          | Error err ->
              (* Leave the campaign interrupted in the spool: the next
                 daemon start (or an idempotent resubmit) retries it. *)
              Quota.release st.quota ~tenant:e.Spool.tenant
                ~runs:e.Spool.spec.Spool.runs;
              Printf.eprintf "szcd: spool: cannot resume %s: %s\n%!"
                e.Spool.entry_dir err)
    entries

(* ---------------------------------------------------------------- *)
(* Main loop                                                         *)
(* ---------------------------------------------------------------- *)

let drain_requested = ref false

let select_with_flags read_fds write_fds timeout =
  try Unix.select read_fds write_fds [] timeout
  with Unix.Unix_error (Unix.EINTR, _, _) ->
    (* A signal landed (SIGTERM → drain flag); surface to the loop. *)
    ([], [], [])

let run cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  drain_requested := false;
  let on_term = Sys.Signal_handle (fun _ -> drain_requested := true) in
  Sys.set_signal Sys.sigterm on_term;
  Sys.set_signal Sys.sigint on_term;
  let st =
    {
      cfg;
      quota = Quota.create cfg.limits;
      sched = Sched.create ~quantum:cfg.quantum ~slots:cfg.slots;
      listen_fd = None;
      clients = [];
      runners = [];
      done_cache = Hashtbl.create 64;
      done_order = Queue.create ();
      draining = false;
      ops = Ops.create ();
      oplog = None;
      started_at = Unix.gettimeofday ();
      last_drain = None;
      export_due = 0.;
    }
  in
  match
    mkdir_p cfg.spool;
    Sys.is_directory cfg.spool
  with
  | false | (exception Sys_error _) | (exception Unix.Unix_error _) ->
      Printf.eprintf "szcd: spool %s is unusable\n%!" cfg.spool;
      3
  | true -> (
      st.last_drain <- read_last_drain st;
      (match cfg.oplog with
      | None -> ()
      | Some path -> (
          match Oplog.create ~path () with
          | Ok l ->
              st.oplog <- Some l;
              ops_event st "daemon.start"
                [
                  ("version", Json.String version);
                  ("socket", Json.String cfg.socket);
                  ("slots", Json.Int cfg.slots);
                ]
          | Error e ->
              (* The ops plane is best-effort by contract: never refuse
                 to serve campaigns because telemetry is sick. *)
              Printf.eprintf "szcd: oplog %s disabled: %s\n%!" path e));
      recover_spool st;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
        Unix.bind fd (Unix.ADDR_UNIX cfg.socket);
        Unix.listen fd 64
      with
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "szcd: cannot listen on %s: %s\n%!" cfg.socket
            (Unix.error_message e);
          (try Unix.close fd with Unix.Unix_error _ -> ());
          3
      | () ->
          st.listen_fd <- Some fd;
          log_line st "listening on %s (spool %s, %d slots, quantum %d)"
            cfg.socket cfg.spool cfg.slots cfg.quantum;
          let running = ref true in
          while !running do
            if !drain_requested then start_drain st "signal";
            if st.draining && st.runners = [] then running := false
            else begin
              scheduler_pass st;
              st.clients <- List.filter (fun c -> c.alive) st.clients;
              let fds =
                (match st.listen_fd with
                | Some l when not st.draining -> [ l ]
                | _ -> [])
                @ List.map (fun c -> c.c_fd) st.clients
                @ List.map (fun r -> r.event_r) st.runners
              in
              let wfds =
                List.filter_map
                  (fun c ->
                    if c.alive && Buffer.length c.outbuf > 0 then Some c.c_fd
                    else None)
                  st.clients
              in
              let ready, wready, _ = select_with_flags fds wfds 0.25 in
              (* Tick timing and wake attribution happen after select
                 returns: the clock read is operational-plane only and
                 never reaches a campaign decision. *)
              let tick_start = Unix.gettimeofday () in
              if ready = [] && wready = [] then
                Ops.incr st.ops "loop.wake.timeout"
              else begin
                if wready <> [] then Ops.incr st.ops "loop.wake.writable";
                List.iter
                  (fun fd ->
                    if Some fd = st.listen_fd then
                      Ops.incr st.ops "loop.wake.listen"
                    else if
                      List.exists (fun c -> c.alive && c.c_fd = fd) st.clients
                    then Ops.incr st.ops "loop.wake.client"
                    else if List.exists (fun r -> r.event_r = fd) st.runners
                    then Ops.incr st.ops "loop.wake.runner")
                  ready
              end;
              List.iter
                (fun fd_ready ->
                  match
                    List.find_opt
                      (fun c -> c.alive && c.c_fd = fd_ready)
                      st.clients
                  with
                  | Some c -> flush_client st c
                  | None -> ())
                wready;
              List.iter
                (fun fd_ready ->
                  if Some fd_ready = st.listen_fd then (
                    match restart_on_eintr (fun () -> Unix.accept fd_ready) with
                    | exception Unix.Unix_error _ -> ()
                    | cfd, _ ->
                        (* Non-blocking: a wedged client can never
                           stall the event loop on a write. *)
                        Unix.set_nonblock cfd;
                        let c =
                          {
                            c_fd = cfd;
                            dec = Wire.create ~expect_greeting:true;
                            watching = None;
                            alive = true;
                            outbuf = Buffer.create 256;
                            watch_ms = 0;
                            watch_due = 0.;
                          }
                        in
                        st.clients <- st.clients @ [ c ];
                        Ops.incr st.ops "client.accept";
                        client_write st c Wire.greeting)
                  else
                    match
                      List.find_opt
                        (fun c -> c.alive && c.c_fd = fd_ready)
                        st.clients
                    with
                    | Some c -> handle_client_bytes st c
                    | None -> (
                        match
                          List.find_opt
                            (fun r -> r.event_r = fd_ready)
                            st.runners
                        with
                        | Some r -> handle_runner_event st r
                        | None -> ()))
                ready;
              watch_pass st;
              (* Exporter throttle: a scrape file is refreshed at most
                 about once a second, plus once at drain below. *)
              (if cfg.ops_export <> None then
                 let now = Unix.gettimeofday () in
                 if now >= st.export_due then begin
                   st.export_due <- now +. 1.0;
                   export_ops st
                 end);
              Ops.observe st.ops "loop.tick_us"
                (int_of_float
                   ((Unix.gettimeofday () -. tick_start) *. 1_000_000.))
            end
          done;
          (match st.listen_fd with
          | Some l -> ( try Unix.close l with Unix.Unix_error _ -> ())
          | None -> ());
          (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
          List.iter (fun c -> detach st c) st.clients;
          write_last_drain st;
          export_ops st;
          ops_event st "daemon.drained" [ ("version", Json.String version) ];
          (match st.oplog with Some l -> Oplog.close l | None -> ());
          log_line st "drained cleanly";
          0)
