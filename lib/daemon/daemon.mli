(** The szcd service core: a single-threaded [select] event loop that
    listens on a Unix-domain socket, admits campaigns through {!Quota},
    multiplexes their runs onto the shared pool through {!Sched}
    (deficit round robin), and supervises one {!Runner} child process
    per in-flight campaign.

    Robustness contract:
    - a client disconnecting mid-stream detaches its campaign — the
      campaign keeps running and its artifacts land in the spool
      ([SIGPIPE] is ignored; [EPIPE] on a client socket only drops that
      client);
    - a corrupt or unparsable frame is answered with an [error] frame
      and a close — the peer is isolated, the daemon never dies on
      wire input;
    - [SIGTERM]/[SIGINT] drain: admission stops, every runner gets a
      [Stop] grant and exits at its next batch boundary with the
      campaign durably checkpointed, then the daemon exits 0;
    - on startup the spool is scanned, stale runner pids are killed,
      salvageable artifacts repaired ({!Spool.repair}) and interrupted
      campaigns resumed with storage faults disarmed — exactly the
      [szc fsck --repair] + [--resume] recovery a solo campaign gets;
    - a runner that dies unexpectedly (crash, SIGKILL) is restarted
      from its checkpoint a bounded number of times, then its campaign
      is failed with exit code 3.

    Observability contract: the daemon carries a second, {e operational}
    plane — a wall-clock-fed {!Stz_telemetry.Ops} registry (event-loop
    tick latency, wake reasons, per-verb frame counters, admission and
    runner lifecycle counters), an optional rotating
    {!Stz_telemetry.Oplog}, periodic [stats]/[watch] wire snapshots and
    an optional Prometheus textfile exporter. The plane is strictly
    write-only with respect to campaigns: no scheduling, admission or
    artifact decision ever reads it, so enabling all of it changes zero
    bytes of any campaign CSV, checkpoint, ledger or trace. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  spool : string;  (** campaign spool directory *)
  limits : Quota.limits;
  slots : int;  (** shared pool run slots (the global concurrency) *)
  quantum : int;  (** DRR quantum, runs of deficit per visit *)
  verbose : bool;
  oplog : string option;
      (** rotating CRC-framed JSONL oplog path; [None] disables *)
  ops_export : string option;
      (** Prometheus textfile path, rewritten atomically about once a
          second; [None] disables *)
}

val default_config : socket:string -> spool:string -> config

(** Daemon build/version string reported in [status] info and
    [stats] snapshots. *)
val version : string

(** Run the daemon until drained. Returns the process exit code: 0 for
    a clean drain, 3 when the spool or socket is unusable. *)
val run : config -> int
