module S = Stabilizer
module Artifact = Stz_store.Artifact

type event =
  | Want of int
  | Freed of int
  | Progress of { run : int; line : string }
  | Finished of { exit_code : int; line : string }

type grant = Grant of int | Stop

let exit_finished = 0
let exit_stopped = 10
let exit_orphaned = 11

(* ------------------------------------------------------------------ *)
(* Pipe IO: Marshal values written with one write(2) each — far below  *)
(* PIPE_BUF, so they are atomic and a reader woken by select can       *)
(* block-read the rest of the message without stalling.                *)
(* ------------------------------------------------------------------ *)

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

let write_value fd v =
  let s = Marshal.to_bytes v [] in
  let rec go off =
    if off < Bytes.length s then
      let n = restart_on_eintr (fun () -> Unix.write fd s off (Bytes.length s - off)) in
      if n = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
      else go (off + n)
  in
  go 0

let read_exactly fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then Some buf
    else
      match restart_on_eintr (fun () -> Unix.read fd buf off (len - off)) with
      | 0 -> None
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
          None
  in
  go 0

let read_value fd =
  match read_exactly fd Marshal.header_size with
  | None -> None
  | Some header -> (
      match read_exactly fd (Marshal.data_size header 0) with
      | None -> None
      | Some data ->
          Some (Marshal.from_bytes (Bytes.cat header data) 0))

let send_grant fd (g : grant) =
  try
    write_value fd g;
    true
  with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> false

let read_event fd : event option = read_value fd

(* ------------------------------------------------------------------ *)
(* Campaign execution                                                  *)
(* ------------------------------------------------------------------ *)

exception Stopped
exception Orphaned

(* Identical to the szc campaign per-run progress line. *)
let progress_line (r : S.Supervisor.record) =
  Printf.sprintf "run %3d: %s%s" r.S.Supervisor.run
    (match r.S.Supervisor.outcome with
    | S.Supervisor.Done d ->
        Printf.sprintf "%10d cycles (%.6f s)" d.S.Supervisor.cycles
          d.S.Supervisor.seconds
    | S.Supervisor.Trapped (cls, _) ->
        "censored: " ^ Stz_faults.Fault.class_to_string cls
    | S.Supervisor.Budget_exceeded _ -> "censored: budget-exceeded"
    | S.Supervisor.Invalid_result _ -> "censored: invalid-result"
    | S.Supervisor.Worker_lost -> "censored: worker-lost"
    | S.Supervisor.Worker_hung -> "censored: worker-hung")
    (if r.S.Supervisor.retries > 0 then
       Printf.sprintf "  (retries=%d)" r.S.Supervisor.retries
     else "")

let exec ~grant_r ~event_w ~dir ~(spec : Spool.spec) ~resume ~disarm_storage =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* The daemon dying must not orphan the runner into a default SIGTERM
     death mid-write; drain arrives as a Stop grant instead. *)
  let send_event (e : event) =
    try write_value event_w e
    with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ()
  in
  let acquire wanted =
    send_event (Want wanted);
    match (read_value grant_r : grant option) with
    | Some (Grant n) -> n
    | Some Stop -> raise Stopped
    | None -> raise Orphaned
  in
  let release n = send_event (Freed n) in
  let dispatch = S.Parallel.batched ~acquire ~release in
  let profile =
    match Stz_faults.Fault.profile_of_string spec.Spool.faults with
    | Ok p -> p
    | Error e -> failwith ("runner: invalid fault profile: " ^ e)
  in
  let storage =
    match Stz_faults.Storage.profile_of_string spec.Spool.storage_faults with
    | Ok p -> p
    | Error e -> failwith ("runner: invalid storage profile: " ^ e)
  in
  let opt =
    match Stz_vm.Opt.level_of_string spec.Spool.opt with
    | Some l -> l
    | None -> failwith ("runner: invalid opt level " ^ spec.Spool.opt)
  in
  let bench_profile =
    match Stz_workloads.Spec.find spec.Spool.bench with
    | Some p -> Stz_workloads.Profile.scale spec.Spool.scale p
    | None -> failwith ("runner: unknown benchmark " ^ spec.Spool.bench)
  in
  let program = Stz_workloads.Generate.program bench_profile in
  let config = S.Config.stabilizer in
  let monitor =
    if spec.Spool.ledger then Some (Stz_monitor.Monitor.create ()) else None
  in
  let telemetry =
    if spec.Spool.trace then Some (Stz_telemetry.Trace.create ~lanes:4 ())
    else None
  in
  (* Under a wedge-free profile nothing can legitimately hang, and a
     calibrated grace could misfire when the host is oversubscribed by
     concurrent tenants — a spurious Worker_hung would break byte
     identity with the solo run. Use a large fixed grace instead;
     wedge-armed profiles keep the calibrated watchdog. *)
  let policy =
    let base =
      {
        S.Supervisor.default_policy with
        S.Supervisor.max_retries = spec.Spool.retries;
      }
    in
    if profile.Stz_faults.Fault.wedge = 0.0 then
      { base with S.Supervisor.hang_grace = Some 120.0 }
    else base
  in
  if (not disarm_storage) && Stz_faults.Storage.active storage then
    Stz_faults.Storage.arm ~seed:(Int64.of_int spec.Spool.storage_seed) storage;
  let finish outcome exit_code line =
    Stz_faults.Storage.disarm ();
    Spool.write_result ~dir outcome;
    send_event (Finished { exit_code; line });
    (try Unix.close event_w with Unix.Unix_error _ -> ());
    exit exit_finished
  in
  match
    S.Driver.campaign ~policy ~profile ~jobs:2
      ~checkpoint:(Spool.checkpoint_path dir) ~resume ?telemetry ?monitor
      ~dispatch
      ~on_record:(fun r ->
        send_event (Progress { run = r.S.Supervisor.run; line = progress_line r }))
      ~config ~opt
      ~base_seed:(Int64.of_int spec.Spool.seed)
      ~runs:spec.Spool.runs ~args:Stz_workloads.Generate.default_args program
  with
  | exception Stopped ->
      Stz_faults.Storage.disarm ();
      exit exit_stopped
  | exception Orphaned ->
      Stz_faults.Storage.disarm ();
      exit exit_orphaned
  | exception S.Supervisor.Mismatch msg ->
      finish (Spool.Finished 3) 3 ("campaign aborted: " ^ msg)
  | campaign ->
      let summary = S.Supervisor.summarize campaign in
      (match (spec.Spool.trace, telemetry) with
      | true, Some tr ->
          Artifact.write_with_sum (Spool.trace_path dir)
            (Stz_telemetry.Export.chrome_string (Stz_telemetry.Trace.events tr))
      | _ -> ());
      Artifact.write_with_sum (Spool.csv_path dir)
        (S.Report.csv_of_campaign campaign);
      let line = S.Report.campaign_line summary in
      let ledger_failed =
        if not spec.Spool.ledger then None
        else
          let fp =
            S.History.fingerprint ~bench:spec.Spool.bench ~opt
              ~scale:spec.Spool.scale campaign
          in
          let verdict =
            match monitor with
            | Some m ->
                Stz_monitor.Monitor.verdict_to_string
                  (Stz_monitor.Monitor.advise m)
            | None -> "-"
          in
          let entry =
            S.History.entry_of_campaign ~verdict ~label:spec.Spool.bench
              ~fingerprint:fp campaign
          in
          match Stz_store.Ledger.append (Spool.ledger_path dir) entry with
          | Ok _ -> None
          | Error e -> Some e
      in
      let exit_code =
        match ledger_failed with
        | Some e ->
            ignore e;
            3
        | None ->
            if summary.S.Supervisor.completed = 0 then 3
            else if summary.S.Supervisor.completed < spec.Spool.min_n then 2
            else 0
      in
      let line =
        match ledger_failed with
        | Some e -> Printf.sprintf "ledger append failed: %s" e
        | None -> line
      in
      finish (Spool.Finished exit_code) exit_code line
