(** Admission control: per-tenant quotas plus a global run budget.
    Overload is answered with a typed rejection at submit time, never
    with queue collapse — a campaign that is admitted will run.

    Accounting is reservation-based: {!admit} atomically reserves the
    campaign slot and its planned runs, {!release} returns them when
    the campaign reaches any terminal state (finished, cancelled,
    drained). Resumed campaigns re-reserve their full run count — the
    budget bounds work the daemon has {e promised}, not work left. *)

type limits = {
  max_campaigns_per_tenant : int;  (** concurrent in-flight campaigns *)
  max_runs_per_tenant : int;  (** total runs across a tenant's in-flight campaigns *)
  global_run_budget : int;  (** total runs in flight across all tenants *)
}

val default_limits : limits

type t

val create : limits -> t

(** Why an admission was refused — typed so the ops plane can count
    rejections by cause. *)
type reject = Campaign_quota | Run_quota | Global_budget

(** Stable metric-key form: ["campaign-quota"], ["run-quota"],
    ["global-budget"]. *)
val reject_key : reject -> string

(** Reserve one campaign of [runs] runs for [tenant];
    [Error (why, reason)] (the [reason] suitable for a [Rejected]
    reply) when any quota would be exceeded. *)
val admit : t -> tenant:string -> runs:int -> (unit, reject * string) result

(** Unconditionally re-reserve (crash-recovery and runner-restart
    paths): the admission promise predates the crash and is never
    dropped, even if the quota has since filled — the counters really
    are incremented, so the matching {!release} stays balanced and
    later admissions see the true in-flight load. *)
val readmit : t -> tenant:string -> runs:int -> unit

val release : t -> tenant:string -> runs:int -> unit

(** In-flight campaign count, all tenants. *)
val in_flight : t -> int

(** Runs currently reserved against the global budget. *)
val global_runs : t -> int

val limits : t -> limits

(** Per-tenant reservation snapshot, sorted by tenant — the ops
    plane's quota-occupancy view. *)
type usage = { u_tenant : string; u_campaigns : int; u_runs : int }

val usage : t -> usage list
