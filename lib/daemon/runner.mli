(** The campaign runner: a child process forked by the daemon that
    executes one spooled campaign through the real
    {!Stabilizer.Driver.campaign} path and writes exactly the artifacts
    a solo [szc campaign] invocation would — same checkpoint, CSV,
    trace and ledger bytes. Run slots are metered by the daemon: the
    runner's {!Stabilizer.Parallel.batched} dispatcher asks for credits
    over the event pipe ({!Want}) and blocks until a {!Grant} arrives,
    so the daemon's deficit-round-robin scheduler decides every batch
    size. Batch partitioning is unobservable in the artifacts (results
    are merged in run order downstream), which is the determinism
    invariant the whole daemon rests on.

    Degradation contract: a [Stop] grant (drain or cancel) makes the
    runner exit {!exit_stopped} at the next batch boundary with the
    campaign durably checkpointed; EOF on the grant pipe (the daemon
    died) likewise ends the runner at the next boundary with
    {!exit_orphaned}. In both cases no result record is written, so a
    restarted daemon sees the campaign as interrupted and resumes
    it. *)

(** Runner → daemon, over the event pipe. Writes are single
    [Unix.write]s well under [PIPE_BUF], hence atomic. *)
type event =
  | Want of int  (** blocked at a batch boundary, wants up to [n] slots *)
  | Freed of int  (** a batch finished; its slots are free again *)
  | Progress of { run : int; line : string }  (** one finished run, in run order *)
  | Finished of { exit_code : int; line : string }
      (** terminal: the campaign's [szc campaign] exit code and
          one-line summary; the result record is already durable *)

(** Daemon → runner, over the grant pipe. *)
type grant = Grant of int | Stop

(** Runner exit codes. *)
val exit_finished : int

val exit_stopped : int
val exit_orphaned : int

(** [send_grant fd g] — [false] when the runner is gone (EPIPE), which
    is never an error for the daemon (the event-pipe EOF follows). *)
val send_grant : Unix.file_descr -> grant -> bool

(** Blocking read of one event; [None] on EOF (runner exited). Safe to
    call when [select] reported the fd readable: events are written
    atomically, so the bytes of a started message are already there. *)
val read_event : Unix.file_descr -> event option

(** Execute the campaign in [dir] per [spec]; never returns (calls
    [exit]). Must be called in a freshly forked child. [resume]
    continues from the spooled checkpoint; [disarm_storage] forces
    storage-fault injection off regardless of the spec — set on
    crash-recovery resumes, where the fault stream's position is lost
    (mirrors [check_recovery.sh]'s faults-off resume). *)
val exec :
  grant_r:Unix.file_descr ->
  event_w:Unix.file_descr ->
  dir:string ->
  spec:Spool.spec ->
  resume:bool ->
  disarm_storage:bool ->
  'a
