type flow = {
  key : string;
  mutable want : int;
  mutable deficit : int;
  mutable held : int;  (** slots granted and not yet freed *)
}

type t = {
  quantum : int;
  slots : int;
  mutable flows : flow list;  (** arrival order *)
  mutable busy : int;
}

let create ~quantum ~slots =
  { quantum = Stdlib.max 1 quantum; slots = Stdlib.max 1 slots; flows = []; busy = 0 }

let find t key = List.find_opt (fun f -> f.key = key) t.flows

let register t ~key =
  if find t key = None then
    t.flows <- t.flows @ [ { key; want = 0; deficit = 0; held = 0 } ]

let unregister t ~key =
  (match find t key with
  | Some f -> t.busy <- Stdlib.max 0 (t.busy - f.held)
  | None -> ());
  t.flows <- List.filter (fun f -> f.key <> key) t.flows

let want t ~key n = match find t key with Some f -> f.want <- Stdlib.max 0 n | None -> ()

let free t ~key n =
  match find t key with
  | Some f ->
      let n = Stdlib.min n f.held in
      f.held <- f.held - n;
      t.busy <- Stdlib.max 0 (t.busy - n)
  | None -> ()

let grants t =
  let out = ref [] in
  List.iter
    (fun f ->
      if f.want > 0 && t.busy < t.slots then begin
        f.deficit <- f.deficit + t.quantum;
        let g = Stdlib.min f.want (Stdlib.min f.deficit (t.slots - t.busy)) in
        if g > 0 then begin
          f.deficit <- f.deficit - g;
          f.want <- 0;
          f.held <- f.held + g;
          t.busy <- t.busy + g;
          out := (f.key, g) :: !out
        end
      end
      else if f.want = 0 then
        (* An idle flow carries no deficit into its next burst. *)
        f.deficit <- 0)
    t.flows;
  List.rev !out

let busy t = t.busy
let slots t = t.slots

type flow_stat = { f_key : string; f_want : int; f_deficit : int; f_held : int }

let flows t =
  List.map
    (fun f ->
      { f_key = f.key; f_want = f.want; f_deficit = f.deficit; f_held = f.held })
    t.flows
