(** The daemon's client side ([szc remote]): connect with a deadline,
    exponential backoff and seed-deterministic jitter; speak
    {!Protocol} over {!Wire}; and survive daemon restarts by
    idempotently resubmitting and re-attaching mid-stream.

    All errors are values — a dead daemon, a refused socket, a corrupt
    frame or an expired deadline surface as [Error reason], never an
    exception. *)

type t

(** [connect ~socket ~deadline ~seed ()] — retry transient connection
    failures ([ENOENT], [ECONNREFUSED], [EAGAIN]) with exponential
    backoff (50 ms doubling, capped at 1 s) plus a jitter drawn from a
    Splitmix stream over [seed], so a thousand clients with distinct
    seeds never thundering-herd the socket and a test with a fixed
    seed replays the same schedule. [deadline] is an absolute
    [Unix.gettimeofday] instant; past it, [Error]. *)
val connect :
  socket:string -> deadline:float -> seed:int64 -> unit -> (t, string) result

val close : t -> unit

(** Send one request. *)
val send : t -> Protocol.request -> (unit, string) result

(** Read the next response, waiting at most until [deadline]. *)
val read_response :
  t -> deadline:float -> (Protocol.response, string) result

(** [send] then [read_response]. *)
val rpc :
  t -> deadline:float -> Protocol.request -> (Protocol.response, string) result

(** Submit a campaign and follow it to completion: connect, submit
    (idempotent — a resubmit of the same spec attaches to the existing
    campaign), stream progress, and on any transport failure (daemon
    killed, connection reset) reconnect with backoff and re-attach from
    the first run not yet seen. Returns the campaign's exit code and
    summary line. [progress] observes each run line exactly once, in
    run order, across reconnects. *)
val submit_and_wait :
  socket:string ->
  deadline:float ->
  seed:int64 ->
  tenant:string ->
  id:string ->
  spec:Spool.spec ->
  progress:(int -> string -> unit) ->
  (int * string, string) result
