(** Binary framing for the daemon socket, reusing the {!Stz_store}
    container discipline: a magic greeting line, then tagged,
    length-prefixed, CRC-32-checksummed frames —

    {v
    %szc-wire 1\n                          (greeting, once per side)
    @<verb> <len> <crc32hex>\n<payload>\n  (each frame)
    v}

    The CRC covers the verb and the payload (exactly
    [Artifact.record_crc]), so a single-bit flip anywhere in a frame is
    detected before the payload reaches a parser. The decoder is
    incremental and {e never raises}: arbitrary bytes produce either
    complete frames or a {!Corrupt} verdict, after which the stream is
    dead — the peer is fault-isolated by closing the connection, never
    by crashing the process. *)

(** The greeting line every peer sends first: ["%szc-wire 1\n"]. The
    version byte is part of the magic; a future incompatible protocol
    bumps it and old peers reject the stream cleanly. *)
val greeting : string

(** Upper bound on a frame payload (16 MiB): a corrupt or hostile
    length field can never make the decoder allocate unbounded
    memory. *)
val max_payload : int

(** [frame ~verb payload] — encode one frame. Raises [Invalid_argument]
    on a malformed verb (empty, longer than 32 bytes, or characters
    outside [a-z0-9-]) or an oversized payload: both are programmer
    errors, not wire conditions. *)
val frame : verb:string -> string -> string

(** One decoding step: a complete frame, or the reason the stream is
    unusable. *)
type event = Frame of { verb : string; payload : string } | Corrupt of string

type decoder

(** [create ~expect_greeting] — a fresh decoder. With [expect_greeting]
    (the normal case) the first bytes must be exactly {!greeting};
    anything else is {!Corrupt}. *)
val create : expect_greeting:bool -> decoder

(** Append received bytes. Never raises; buffering is bounded by the
    frame size limits, oversize input surfaces as {!Corrupt} from
    {!next}. *)
val feed : decoder -> string -> unit

(** Pull the next event, [None] when more bytes are needed. After a
    {!Corrupt} event every later call returns the same verdict. *)
val next : decoder -> event option
