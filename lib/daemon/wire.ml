module Crc32 = Stz_store.Crc32

let greeting = "%szc-wire 1\n"
let max_payload = 16 * 1024 * 1024
let max_verb = 32

(* "@" + verb + " " + decimal len + " " + 8 hex digits + "\n" *)
let max_header = 2 + max_verb + 1 + 20 + 1 + 8 + 2
let frame_crc verb payload = Crc32.update (Crc32.update 0l verb) payload

let verb_ok v =
  let n = String.length v in
  n >= 1 && n <= max_verb
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false)
       v

let frame ~verb payload =
  if not (verb_ok verb) then invalid_arg ("Wire.frame: bad verb " ^ verb);
  if String.length payload > max_payload then
    invalid_arg "Wire.frame: payload too large";
  Printf.sprintf "@%s %d %s\n%s\n" verb (String.length payload)
    (Crc32.to_hex (frame_crc verb payload))
    payload

type event = Frame of { verb : string; payload : string } | Corrupt of string
type state = Greeting | Frames | Dead of string

type decoder = {
  mutable buf : string;  (** unconsumed bytes, [pos..] *)
  mutable pos : int;
  mutable state : state;
}

let create ~expect_greeting =
  { buf = ""; pos = 0; state = (if expect_greeting then Greeting else Frames) }

let available d = String.length d.buf - d.pos

let feed d s =
  if s <> "" then
    if d.buf = "" then (
      d.buf <- s;
      d.pos <- 0)
    else (
      (* Compact before appending so the buffer never grows past the
         unconsumed bytes plus one read. *)
      d.buf <- String.sub d.buf d.pos (available d) ^ s;
      d.pos <- 0)

let consume d n = d.pos <- d.pos + n

let die d msg =
  d.state <- Dead msg;
  Some (Corrupt msg)

(* The greeting must match byte-for-byte as it arrives: a wrong prefix
   is rejected without waiting for more input. *)
(* [true] when the greeting was fully consumed and frame parsing can
   proceed on the remaining buffered bytes. *)
let check_greeting d =
  let n = Stdlib.min (available d) (String.length greeting) in
  let prefix_ok = String.sub d.buf d.pos n = String.sub greeting 0 n in
  if not prefix_ok then (
    d.state <- Dead "bad greeting (not an szc-wire peer)";
    false)
  else if n < String.length greeting then false
  else (
    consume d (String.length greeting);
    d.state <- Frames;
    true)

let parse_header line =
  if String.length line < 2 || line.[0] <> '@' then
    Error "frame header does not start with '@'"
  else
    match
      String.split_on_char ' ' (String.sub line 1 (String.length line - 1))
    with
    | [ verb; len; crc ] -> (
        if not (verb_ok verb) then Error "malformed frame verb"
        else
          match (int_of_string_opt len, Crc32.of_hex crc) with
          | Some len, Some crc when len >= 0 && len <= max_payload ->
              Ok (verb, len, crc)
          | Some len, _ when len < 0 || len > max_payload ->
              Error "frame length out of range"
          | _ -> Error "malformed frame header")
    | _ -> Error "malformed frame header"

let decode_frame d nl =
  let header = String.sub d.buf d.pos (nl - d.pos) in
  match parse_header header with
  | Error msg -> die d msg
  | Ok (verb, len, crc) ->
      let body_start = nl + 1 in
      if String.length d.buf - body_start < len + 1 then None
      else if d.buf.[body_start + len] <> '\n' then
        die d "missing frame terminator"
      else
        let payload = String.sub d.buf body_start len in
        if frame_crc verb payload <> crc then die d "frame CRC mismatch"
        else (
          consume d (body_start + len + 1 - d.pos);
          Some (Frame { verb; payload }))

let rec next d =
  match d.state with
  | Dead msg -> Some (Corrupt msg)
  | Greeting ->
      if available d = 0 then None
      else if check_greeting d then next d
      else ( match d.state with Dead msg -> Some (Corrupt msg) | _ -> None)
  | Frames -> (
      if available d = 0 then None
      else
        let limit = Stdlib.min (available d) max_header in
        match String.index_from_opt d.buf d.pos '\n' with
        | Some nl when nl - d.pos < limit -> decode_frame d nl
        | Some _ | None ->
            if available d >= max_header then die d "frame header too long"
            else None)
