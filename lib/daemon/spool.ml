module Json = Stz_telemetry.Json
module Artifact = Stz_store.Artifact

type spec = {
  bench : string;
  runs : int;
  seed : int;
  scale : float;
  opt : string;
  faults : string;
  storage_faults : string;
  storage_seed : int;
  retries : int;
  min_n : int;
  ledger : bool;
  trace : bool;
}

let default_spec =
  {
    bench = "bzip2";
    runs = 30;
    seed = 1;
    scale = 1.0;
    opt = "O2";
    faults = "none";
    storage_faults = "none";
    storage_seed = 1;
    retries =
      Stabilizer.Supervisor.default_policy.Stabilizer.Supervisor.max_retries;
    min_n = 3;
    ledger = false;
    trace = false;
  }

let spec_to_json s =
  Json.Obj
    [
      ("bench", Json.String s.bench);
      ("runs", Json.Int s.runs);
      ("seed", Json.Int s.seed);
      ("scale", Json.String (Printf.sprintf "%.17g" s.scale));
      ("opt", Json.String s.opt);
      ("faults", Json.String s.faults);
      ("storage_faults", Json.String s.storage_faults);
      ("storage_seed", Json.Int s.storage_seed);
      ("retries", Json.Int s.retries);
      ("min_n", Json.Int s.min_n);
      ("ledger", Json.Bool s.ledger);
      ("trace", Json.Bool s.trace);
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "manifest: missing or malformed %S" name)

let to_bool = function Json.Bool b -> Some b | _ -> None

let to_float_string j =
  Option.bind (Json.to_str j) (fun s -> float_of_string_opt s)

let spec_of_json j =
  let* bench = field "bench" Json.to_str j in
  let* runs = field "runs" Json.to_int j in
  let* seed = field "seed" Json.to_int j in
  let* scale = field "scale" (fun x -> to_float_string x) j in
  let* opt = field "opt" Json.to_str j in
  let* faults = field "faults" Json.to_str j in
  let* storage_faults = field "storage_faults" Json.to_str j in
  let* storage_seed = field "storage_seed" Json.to_int j in
  let* retries = field "retries" Json.to_int j in
  let* min_n = field "min_n" Json.to_int j in
  let* ledger = field "ledger" to_bool j in
  let* trace = field "trace" to_bool j in
  Ok
    {
      bench;
      runs;
      seed;
      scale;
      opt;
      faults;
      storage_faults;
      storage_seed;
      retries;
      min_n;
      ledger;
      trace;
    }

let validate s =
  let* () =
    if s.runs >= 1 then Ok ()
    else Error (Printf.sprintf "runs must be >= 1 (got %d)" s.runs)
  in
  let* () =
    if s.retries >= 0 && s.min_n >= 0 then Ok ()
    else Error "retries and min_n must be >= 0"
  in
  let* () =
    if s.scale > 0.0 && Float.is_finite s.scale then Ok ()
    else Error "scale must be a positive finite float"
  in
  let* () =
    match Stz_workloads.Spec.find s.bench with
    | Some _ -> Ok ()
    | None -> Error (Printf.sprintf "unknown benchmark %S" s.bench)
  in
  let* () =
    match Stz_vm.Opt.level_of_string s.opt with
    | Some _ -> Ok ()
    | None -> Error (Printf.sprintf "unknown optimization level %S" s.opt)
  in
  let* () = Result.map ignore (Stz_faults.Fault.profile_of_string s.faults) in
  Result.map ignore (Stz_faults.Storage.profile_of_string s.storage_faults)

let token_ok t =
  let n = String.length t in
  n >= 1 && n <= 64
  && t.[0] <> '.'
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       t

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let dir ~spool ~tenant ~id = Filename.concat (Filename.concat spool tenant) id
let manifest_path d = Filename.concat d "manifest"
let checkpoint_path d = Filename.concat d "checkpoint.ck"
let csv_path d = Filename.concat d "out.csv"
let ledger_path d = Filename.concat d "ledger"
let trace_path d = Filename.concat d "trace.json"
let result_path d = Filename.concat d "result"
let pid_path d = Filename.concat d "runner.pid"

let rec mkdir_p path =
  if path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Manifest and result records                                         *)
(* ------------------------------------------------------------------ *)

let manifest_kind = "szc-manifest"
let result_kind = "szc-result"

let write_manifest ~dir spec =
  mkdir_p dir;
  Artifact.write_records (manifest_path dir) ~kind:manifest_kind
    [ ("spec", Json.to_string (spec_to_json spec)) ]

let read_manifest ~dir =
  let* kind, records = Artifact.read_records (manifest_path dir) in
  let* () =
    if kind = manifest_kind then Ok ()
    else Error (Printf.sprintf "not a manifest (kind %S)" kind)
  in
  let* payload =
    match List.assoc_opt "spec" records with
    | Some p -> Ok p
    | None -> Error "manifest: no spec record"
  in
  let* j = Json.of_string payload in
  spec_of_json j

type outcome = Finished of int | Cancelled

let outcome_state = function Finished _ -> "finished" | Cancelled -> "cancelled"

let write_result ~dir outcome =
  let payload =
    match outcome with
    | Finished code -> Printf.sprintf "state finished\nexit_code %d\n" code
    | Cancelled -> "state cancelled\n"
  in
  Artifact.write_records (result_path dir) ~kind:result_kind
    [ ("result", payload) ]

let read_result ~dir =
  let* kind, records = Artifact.read_records (result_path dir) in
  let* () =
    if kind = result_kind then Ok ()
    else Error (Printf.sprintf "not a result (kind %S)" kind)
  in
  let* payload =
    match List.assoc_opt "result" records with
    | Some p -> Ok p
    | None -> Error "result: no result record"
  in
  let kv =
    List.filter_map
      (fun line ->
        match String.index_opt line ' ' with
        | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
        | None -> None)
      (String.split_on_char '\n' payload)
  in
  match List.assoc_opt "state" kv with
  | Some "cancelled" -> Ok Cancelled
  | Some "finished" -> (
      match Option.bind (List.assoc_opt "exit_code" kv) int_of_string_opt with
      | Some code -> Ok (Finished code)
      | None -> Error "result: malformed exit_code")
  | _ -> Error "result: malformed state"

let completed_runs ~dir =
  match Stabilizer.Supervisor.load (checkpoint_path dir) with
  | Ok c -> List.length c.Stabilizer.Supervisor.records
  | Error _ -> 0

(* The pid file is advisory scratch state, not an artifact: a plain
   write is fine because the worst a torn pid file can cause is a
   missed (or wrong-pid, hence failed) kill of an already-dead
   runner. *)
let write_pid ~dir pid =
  let oc = open_out (pid_path dir) in
  output_string oc (string_of_int pid);
  close_out oc

let read_pid ~dir =
  match open_in (pid_path dir) with
  | exception Sys_error _ -> None
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      close_in_noerr ic;
      int_of_string_opt (String.trim line)

let clear_pid ~dir = try Sys.remove (pid_path dir) with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type entry = {
  tenant : string;
  id : string;
  entry_dir : string;
  spec : spec;
  result : outcome option;
}

let list_dirs path =
  match Sys.readdir path with
  | exception Sys_error _ -> []
  | names ->
      Array.sort compare names;
      Array.to_list names
      |> List.filter (fun n ->
             token_ok n
             &&
             try Sys.is_directory (Filename.concat path n)
             with Sys_error _ -> false)

let scan ~spool =
  let entries = ref [] and broken = ref [] in
  List.iter
    (fun tenant ->
      let tdir = Filename.concat spool tenant in
      List.iter
        (fun id ->
          let d = Filename.concat tdir id in
          match read_manifest ~dir:d with
          | Error e -> broken := (d, e) :: !broken
          | Ok spec -> (
              match validate spec with
              | Error e -> broken := (d, "invalid spec: " ^ e) :: !broken
              | Ok () ->
                  let result = Result.to_option (read_result ~dir:d) in
                  entries :=
                    { tenant; id; entry_dir = d; spec; result } :: !entries))
        (list_dirs tdir))
    (list_dirs spool);
  (List.rev !entries, List.rev !broken)

let promote_tmp path notes =
  let tmp = path ^ ".tmp" in
  if (not (Sys.file_exists path)) && Sys.file_exists tmp then begin
    Sys.rename tmp path;
    notes := Printf.sprintf "%s: promoted rename-dropped temp file" path :: !notes
  end
  else if Sys.file_exists tmp then begin
    (* Both present: the rename either happened (tmp is a stale
       leftover) or was dropped after an earlier version existed; the
       salvage pass below decides what the main file is worth. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    notes := Printf.sprintf "%s: removed stale temp file" tmp :: !notes
  end

let repair ~dir =
  let notes = ref [] in
  let ck = checkpoint_path dir in
  promote_tmp ck notes;
  promote_tmp (ledger_path dir) notes;
  (if Sys.file_exists ck then
     match Stabilizer.Supervisor.load ck with
     | Ok _ -> ()
     | Error _ -> (
         match Stabilizer.Supervisor.recover ck with
         | Ok (c, note) ->
             Stabilizer.Supervisor.save ck c;
             notes :=
               Printf.sprintf "%s: rewritten from salvaged prefix (%s)" ck
                 (Option.value note ~default:"prefix intact")
               :: !notes
         | Error e ->
             (* Unrecoverable: drop it so the campaign restarts from
                run 0 instead of refusing to resume. *)
             (try Sys.rename ck (ck ^ ".corrupt") with Sys_error _ -> ());
             notes :=
               Printf.sprintf "%s: unrecoverable (%s), moved aside" ck e
               :: !notes));
  (let lg = ledger_path dir in
   if Sys.file_exists lg then
     match Stz_store.Ledger.load lg with
     | Ok _ -> ()
     | Error _ -> (
         match Stz_store.Ledger.recover lg with
         | Ok (entries, note) ->
             Stz_store.Ledger.write lg entries;
             notes :=
               Printf.sprintf "%s: rewritten from salvaged prefix (%s)" lg
                 (Option.value note ~default:"prefix intact")
               :: !notes
         | Error e ->
             (try Sys.rename lg (lg ^ ".corrupt") with Sys_error _ -> ());
             notes :=
               Printf.sprintf "%s: unrecoverable (%s), moved aside" lg e
               :: !notes));
  List.iter
    (fun path ->
      promote_tmp path notes;
      (try Sys.remove (path ^ ".sum.tmp") with Sys_error _ -> ());
      if Sys.file_exists path then
        match Artifact.verify_sum path with
        | Ok _ -> ()
        | Error e ->
            (try Sys.remove path with Sys_error _ -> ());
            (try Sys.remove (Artifact.sum_path path) with Sys_error _ -> ());
            notes :=
              Printf.sprintf "%s: checksum mismatch (%s), removed — rewritten \
                              at completion"
                path e
              :: !notes)
    [ csv_path dir; trace_path dir ];
  (try Sys.remove (result_path dir ^ ".tmp") with Sys_error _ -> ());
  (try Sys.remove (manifest_path dir ^ ".tmp") with Sys_error _ -> ());
  List.rev !notes
