type limits = {
  max_campaigns_per_tenant : int;
  max_runs_per_tenant : int;
  global_run_budget : int;
}

let default_limits =
  { max_campaigns_per_tenant = 4; max_runs_per_tenant = 5000; global_run_budget = 20000 }

type tenant_state = { mutable campaigns : int; mutable runs : int }

type t = {
  limits : limits;
  tenants : (string, tenant_state) Hashtbl.t;
  mutable global_runs : int;
  mutable total_campaigns : int;
}

let create limits = { limits; tenants = Hashtbl.create 16; global_runs = 0; total_campaigns = 0 }

let tenant_state t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> s
  | None ->
      let s = { campaigns = 0; runs = 0 } in
      Hashtbl.add t.tenants tenant s;
      s

type reject = Campaign_quota | Run_quota | Global_budget

let reject_key = function
  | Campaign_quota -> "campaign-quota"
  | Run_quota -> "run-quota"
  | Global_budget -> "global-budget"

let admit t ~tenant ~runs =
  let s = tenant_state t tenant in
  if s.campaigns >= t.limits.max_campaigns_per_tenant then
    Error
      ( Campaign_quota,
        Printf.sprintf "tenant %s at campaign quota (%d in flight)" tenant
          s.campaigns )
  else if s.runs + runs > t.limits.max_runs_per_tenant then
    Error
      ( Run_quota,
        Printf.sprintf
          "tenant %s at run quota (%d in flight + %d requested > %d)" tenant
          s.runs runs t.limits.max_runs_per_tenant )
  else if t.global_runs + runs > t.limits.global_run_budget then
    Error
      ( Global_budget,
        Printf.sprintf
          "global run budget exhausted (%d in flight + %d requested > %d)"
          t.global_runs runs t.limits.global_run_budget )
  else begin
    s.campaigns <- s.campaigns + 1;
    s.runs <- s.runs + runs;
    t.global_runs <- t.global_runs + runs;
    t.total_campaigns <- t.total_campaigns + 1;
    Ok ()
  end

let readmit t ~tenant ~runs =
  let s = tenant_state t tenant in
  s.campaigns <- s.campaigns + 1;
  s.runs <- s.runs + runs;
  t.global_runs <- t.global_runs + runs;
  t.total_campaigns <- t.total_campaigns + 1

let release t ~tenant ~runs =
  (match Hashtbl.find_opt t.tenants tenant with
  | Some s ->
      s.campaigns <- Stdlib.max 0 (s.campaigns - 1);
      s.runs <- Stdlib.max 0 (s.runs - runs);
      if s.campaigns = 0 && s.runs = 0 then Hashtbl.remove t.tenants tenant
  | None -> ());
  t.global_runs <- Stdlib.max 0 (t.global_runs - runs);
  t.total_campaigns <- Stdlib.max 0 (t.total_campaigns - 1)

let in_flight t = t.total_campaigns
let global_runs t = t.global_runs
let limits t = t.limits

type usage = { u_tenant : string; u_campaigns : int; u_runs : int }

let usage t =
  Hashtbl.fold
    (fun tenant s acc ->
      { u_tenant = tenant; u_campaigns = s.campaigns; u_runs = s.runs } :: acc)
    t.tenants []
  |> List.sort (fun a b -> String.compare a.u_tenant b.u_tenant)
