(** [szc layout sweep] — ROADMAP item 3b's closer: walk the
    {!Stz_workloads.Fuzz} meta-space searching generated-program space
    for worst-case layout bias. Every index is measured with a small
    {!Explain} matrix (K layout seeds × W argument variants); its
    layout η² goes into a CRC-framed resumable ledger
    ({!Stz_store.Sweeplog}), and offenders at or above the η² threshold
    are shrunk with the fuzzer's delta-debugging minimizer — against an
    η²-preserving predicate — into [Text] reproducers.

    Same campaign discipline as [szc fuzz]: cases run crash-isolated
    through the {!Stabilizer.Parallel} pool with watchdog hang-kill;
    worker death and hangs are censored into the ledger, never fatal;
    the ledger and reproducers are a pure function of the config knobs
    — independent of [jobs], byte-identical across SIGKILL +
    [--resume]. *)

type config = {
  fuzz_seed : int64;
  count : int;
  jobs : int;
  out_dir : string;  (** created if missing *)
  resume : bool;
  layout_seeds : int;  (** K (ANOVA treatments), >= 2 *)
  variants : int;  (** W (ANOVA subjects), >= 2 *)
  threshold : float;  (** layout η² at or above which a case is shrunk *)
  shrink_budget : int;  (** predicate evaluations per offender; 0 = off *)
  watchdog : float option;
  log : string -> unit;
}

type summary = {
  total : int;
  measured : int;
  trapped : int;
  crashed : int;
  hung : int;
  max_eta2 : float;  (** over measured cases; 0 when none *)
  offenders : Stz_store.Sweeplog.case list;
      (** measured cases with η² >= threshold, worst first *)
  reproducers : string list;  (** file names relative to [out_dir] *)
}

(** Ledger file name inside [out_dir] (["sweep.log"]). *)
val ledger_name : string

(** Reproducer file name for an offending index (["repro-%06d.szt"]). *)
val repro_name : int -> string

(** Measure one case end to end (matrix + possible shrink).
    Deterministic. Returns the ledger record plus the reproducer file
    (name, bytes) when one was produced. *)
val evaluate :
  layout_seeds:int ->
  variants:int ->
  threshold:float ->
  shrink_budget:int ->
  fuzz_seed:int64 ->
  index:int ->
  unit ->
  Stz_store.Sweeplog.case * (string * string) option

(** Run (or resume) a sweep. [Error] only for harness-level aborts:
    unusable output directory, ledger kind/meta mismatch, bad knobs. *)
val run_campaign : config -> (summary, string) result

(** Fold ledger cases into a summary (used by [szc layout sweep] for
    reporting and by tests). *)
val summarize : threshold:float -> Stz_store.Sweeplog.case list -> summary
