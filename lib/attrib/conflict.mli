(** Conflict maps: turning the machine model's raw attribution
    snapshots ({!Stz_machine.Hierarchy.attrib_snapshot}) into a ranked
    "who conflicts with whom, in which structure, costing how many
    cycles" answer.

    Events are cross-function: a cache/TLB eviction whose victim line
    was installed by a different function, or a predictor-slot
    misprediction on an entry last trained by a different function.
    Costs are conservative lower-bound estimates from the machine's own
    cost model: each conflict eviction forces at least one refill from
    the next level down. *)

type structure = L1i | L1d | L2 | L3 | Itlb | Dtlb | Predictor

val all_structures : structure list
val structure_name : structure -> string
val structure_of_name : string -> structure option

(** One undirected conflicting pair within one structure. [f1 <= f2];
    [events] sums both eviction directions. *)
type pair = {
  structure : structure;
  f1 : int;
  f2 : int;
  events : int;
  est_cycles : int;  (** events × per-event refill cost *)
}

(** Estimated cycles one conflict event costs in [structure] under
    [cost]: L1 evictions refill from L2, L2 from L3, L3 from memory,
    TLB evictions re-walk, predictor aliases mispredict. *)
val event_cost : Stz_machine.Cost.t -> structure -> int

(** Pointwise sum of two snapshots (same program shape required) —
    accumulating a conflict map over a whole run matrix. *)
val merge :
  Stz_machine.Hierarchy.attrib_snapshot ->
  Stz_machine.Hierarchy.attrib_snapshot ->
  Stz_machine.Hierarchy.attrib_snapshot

(** All nonzero cross-function pairs in every structure, ranked worst
    first: by estimated cycles, then events, then a fixed structural
    order — a deterministic total order, so reports are byte-stable. *)
val pairs :
  ?cost:Stz_machine.Cost.t ->
  Stz_machine.Hierarchy.attrib_snapshot ->
  pair list

(** [pairs] restricted to one structure, same ranking. *)
val pairs_in :
  ?cost:Stz_machine.Cost.t ->
  structure ->
  Stz_machine.Hierarchy.attrib_snapshot ->
  pair list
