module Hierarchy = Stz_machine.Hierarchy
module Cache = Stz_machine.Cache
module Branch = Stz_machine.Branch
module Cost = Stz_machine.Cost

type structure = L1i | L1d | L2 | L3 | Itlb | Dtlb | Predictor

let all_structures = [ L1i; L1d; L2; L3; Itlb; Dtlb; Predictor ]

let structure_name = function
  | L1i -> "l1i"
  | L1d -> "l1d"
  | L2 -> "l2"
  | L3 -> "l3"
  | Itlb -> "itlb"
  | Dtlb -> "dtlb"
  | Predictor -> "branch"

let structure_of_name = function
  | "l1i" -> Some L1i
  | "l1d" -> Some L1d
  | "l2" -> Some L2
  | "l3" -> Some L3
  | "itlb" -> Some Itlb
  | "dtlb" -> Some Dtlb
  | "branch" -> Some Predictor
  | _ -> None

let structure_rank = function
  | L1i -> 0
  | L1d -> 1
  | L2 -> 2
  | L3 -> 3
  | Itlb -> 4
  | Dtlb -> 5
  | Predictor -> 6

type pair = {
  structure : structure;
  f1 : int;
  f2 : int;
  events : int;
  est_cycles : int;
}

(* A conflict eviction forces at least one refill of the victim line
   from the next level down; a predictor alias costs (at least) the
   mispredictions it coincided with. Lower bounds on purpose: the table
   ranks, it does not promise exact cycle recovery. *)
let event_cost (cost : Cost.t) = function
  | L1i | L1d -> cost.Cost.l2_hit
  | L2 -> cost.Cost.l3_hit
  | L3 -> cost.Cost.memory
  | Itlb | Dtlb -> cost.Cost.tlb_miss
  | Predictor -> cost.Cost.branch_misprediction

let add_arrays a b = Array.mapi (fun i x -> x + b.(i)) a

let merge_cache (a : Cache.attrib_view) (b : Cache.attrib_view) =
  if a.Cache.funcs <> b.Cache.funcs then
    invalid_arg "Conflict.merge: function-count mismatch";
  {
    Cache.funcs = a.Cache.funcs;
    set_accesses = add_arrays a.Cache.set_accesses b.Cache.set_accesses;
    set_misses = add_arrays a.Cache.set_misses b.Cache.set_misses;
    evictions = add_arrays a.Cache.evictions b.Cache.evictions;
  }

let merge_branch (a : Branch.attrib_view) (b : Branch.attrib_view) =
  if a.Branch.funcs <> b.Branch.funcs then
    invalid_arg "Conflict.merge: function-count mismatch";
  {
    Branch.funcs = a.Branch.funcs;
    slot_accesses = add_arrays a.Branch.slot_accesses b.Branch.slot_accesses;
    aliases = add_arrays a.Branch.aliases b.Branch.aliases;
    alias_mispredictions =
      add_arrays a.Branch.alias_mispredictions b.Branch.alias_mispredictions;
  }

let merge (a : Hierarchy.attrib_snapshot) (b : Hierarchy.attrib_snapshot) =
  {
    Hierarchy.a_funcs = a.Hierarchy.a_funcs;
    a_l1i = merge_cache a.Hierarchy.a_l1i b.Hierarchy.a_l1i;
    a_l1d = merge_cache a.Hierarchy.a_l1d b.Hierarchy.a_l1d;
    a_l2 = merge_cache a.Hierarchy.a_l2 b.Hierarchy.a_l2;
    a_l3 = merge_cache a.Hierarchy.a_l3 b.Hierarchy.a_l3;
    a_itlb = merge_cache a.Hierarchy.a_itlb b.Hierarchy.a_itlb;
    a_dtlb = merge_cache a.Hierarchy.a_dtlb b.Hierarchy.a_dtlb;
    a_predictor = merge_branch a.Hierarchy.a_predictor b.Hierarchy.a_predictor;
  }

(* Fold a funcs*funcs directional matrix into undirected pairs: entry
   (v, e) and (e, v) describe the same conflicting pair ping-ponging. *)
let matrix_pairs structure ~cost ~funcs m =
  let acc = ref [] in
  for f1 = 0 to funcs - 1 do
    for f2 = f1 + 1 to funcs - 1 do
      let events = m.((f1 * funcs) + f2) + m.((f2 * funcs) + f1) in
      if events > 0 then
        acc :=
          {
            structure;
            f1;
            f2;
            events;
            est_cycles = events * event_cost cost structure;
          }
          :: !acc
    done
  done;
  !acc

let compare_pairs a b =
  let c = compare b.est_cycles a.est_cycles in
  if c <> 0 then c
  else
    let c = compare b.events a.events in
    if c <> 0 then c
    else
      let c = compare (structure_rank a.structure) (structure_rank b.structure) in
      if c <> 0 then c
      else compare (a.f1, a.f2) (b.f1, b.f2)

let structure_pairs ~cost structure (s : Hierarchy.attrib_snapshot) =
  let cache (v : Cache.attrib_view) =
    matrix_pairs structure ~cost ~funcs:v.Cache.funcs v.Cache.evictions
  in
  match structure with
  | L1i -> cache s.Hierarchy.a_l1i
  | L1d -> cache s.Hierarchy.a_l1d
  | L2 -> cache s.Hierarchy.a_l2
  | L3 -> cache s.Hierarchy.a_l3
  | Itlb -> cache s.Hierarchy.a_itlb
  | Dtlb -> cache s.Hierarchy.a_dtlb
  | Predictor ->
      let v = s.Hierarchy.a_predictor in
      matrix_pairs Predictor ~cost ~funcs:v.Branch.funcs
        v.Branch.alias_mispredictions

let pairs ?(cost = Cost.default) s =
  List.sort compare_pairs
    (List.concat_map (fun st -> structure_pairs ~cost st s) all_structures)

let pairs_in ?(cost = Cost.default) structure s =
  List.sort compare_pairs (structure_pairs ~cost structure s)
