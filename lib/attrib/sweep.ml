module F = Stz_workloads.Fuzz
module Sweeplog = Stz_store.Sweeplog
module Text = Stz_vm.Text
module Ir = Stz_vm.Ir
module B = Stz_vm.Builder
module Interp = Stz_vm.Interp
module Parallel = Stabilizer.Parallel
module Fuzzer = Stabilizer.Fuzzer

type config = {
  fuzz_seed : int64;
  count : int;
  jobs : int;
  out_dir : string;
  resume : bool;
  layout_seeds : int;
  variants : int;
  threshold : float;
  shrink_budget : int;
  watchdog : float option;
  log : string -> unit;
}

type summary = {
  total : int;
  measured : int;
  trapped : int;
  crashed : int;
  hung : int;
  max_eta2 : float;
  offenders : Sweeplog.case list;
  reproducers : string list;
}

let ledger_name = "sweep.log"
let repro_name index = Printf.sprintf "repro-%06d.szt" index

let blank_case index case_seed verdict detail =
  {
    Sweeplog.index;
    case_seed;
    verdict;
    eta2 = 0.;
    partial_eta2 = 0.;
    workload_share = 0.;
    residual_share = 0.;
    mean_cycles = 0;
    instrs = 0;
    structure = "";
    victim = -1;
    evictor = -1;
    conflict_events = 0;
    conflict_cycles = 0;
    repro = "";
    repro_instrs = 0;
    shrink_steps = 0;
    detail;
  }

(* Fuzz programs are built for oracle checks, not workload scaling:
   most run the same cycle count whatever their argument, which would
   zero the ANOVA's workload stratum and saturate classic η² at 1 for
   any layout jitter at all. The sweep therefore wraps each case in a
   harness entry that repeats the original program [iters] times, with
   the plan's own arguments baked in as immediates — the repeat count
   becomes a workload factor every program responds to, linearly. *)
let harness_iters_base = 2

let harnessed plan (p : Ir.program) =
  let n = Array.length p.Ir.funcs in
  let b = B.func ~fid:n ~name:"sweep_harness" ~n_args:1 ~frame_size:32 () in
  let total = B.fresh_reg b in
  let i = B.fresh_reg b in
  B.emit b (Ir.Mov (total, Ir.Imm 0));
  B.emit b (Ir.Mov (i, Ir.Imm 0));
  let head = B.new_block b in
  let body = B.new_block b in
  let exit = B.new_block b in
  B.emit b (Ir.Br head);
  B.set_block b head;
  let c = B.fresh_reg b in
  B.emit b (Ir.Cmp (Ir.Lt, c, Ir.Reg i, Ir.Reg 0));
  B.emit b (Ir.Brc (Ir.Reg c, body, exit));
  B.set_block b body;
  let r = B.fresh_reg b in
  B.emit b
    (Ir.Call
       {
         fn = p.Ir.entry;
         args = List.map (fun a -> Ir.Imm a) (F.args plan);
         dst = r;
       });
  B.emit b (Ir.Bin (Ir.Add, total, Ir.Reg total, Ir.Reg r));
  B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
  B.emit b (Ir.Br head);
  B.set_block b exit;
  B.emit b (Ir.Ret (Ir.Reg total));
  { p with Ir.funcs = Array.append p.Ir.funcs [| B.finish b |]; entry = n }

(* The case's Explain matrix: W repeat-count variants (the workload
   factor), K layout seeds split from the case seed (the layout
   factor). Pure in (fuzz_seed, index, K, W). *)
let case_matrix ~layout_seeds ~variants plan p =
  let arg_variants =
    List.init variants (fun v -> [ harness_iters_base + v ])
  in
  let lim = F.limits plan in
  let lim =
    {
      Interp.max_instructions =
        lim.Interp.max_instructions * (harness_iters_base + variants);
      max_call_depth = lim.Interp.max_call_depth + 1;
    }
  in
  Explain.run ~jobs:1 ~limits:lim ~base_seed:plan.F.case_seed
    ~seeds:layout_seeds ~variants:arg_variants (harnessed plan p)

let eta2_of (report : Explain.report) =
  match report.Explain.decomposition with
  | Some d -> Some d
  | None -> None

let mean_cycles_of (report : Explain.report) =
  let sum = ref 0 and n = ref 0 in
  Array.iter
    (Array.iter (fun c ->
         if c >= 0 then begin
           sum := !sum + c;
           incr n
         end))
    report.Explain.cycles;
  if !n = 0 then 0 else !sum / !n

let evaluate ~layout_seeds ~variants ~threshold ~shrink_budget ~fuzz_seed
    ~index () =
  let plan = F.plan ~fuzz_seed ~index in
  let cs = plan.F.case_seed in
  let p = F.build plan in
  let instrs = Fuzzer.program_instrs p in
  match case_matrix ~layout_seeds ~variants plan p with
  | Error e -> (blank_case index cs Sweeplog.Trapped e, None)
  | Ok report -> (
      match eta2_of report with
      | None -> (blank_case index cs Sweeplog.Trapped report.Explain.note, None)
      | Some d ->
          let top = match report.Explain.pairs with [] -> None | p :: _ -> Some p in
          let base =
            {
              (blank_case index cs Sweeplog.Measured (F.describe plan)) with
              Sweeplog.eta2 = d.Explain.layout_eta2;
              partial_eta2 = d.Explain.partial_eta2;
              workload_share = d.Explain.workload_share;
              residual_share = d.Explain.residual_share;
              mean_cycles = mean_cycles_of report;
              instrs;
              structure =
                (match top with
                | None -> ""
                | Some t -> Conflict.structure_name t.Conflict.structure);
              victim = (match top with None -> -1 | Some t -> t.Conflict.f1);
              evictor = (match top with None -> -1 | Some t -> t.Conflict.f2);
              conflict_events =
                (match top with None -> 0 | Some t -> t.Conflict.events);
              conflict_cycles =
                (match top with None -> 0 | Some t -> t.Conflict.est_cycles);
            }
          in
          if d.Explain.layout_eta2 < threshold || shrink_budget <= 0 then
            (base, None)
          else begin
            (* Worst offender: minimize while the layout effect stays
               at or above the threshold. Every predicate evaluation is
               a full K x W matrix, so budgets are kept small. *)
            let pred cand =
              Parallel.beat ();
              match case_matrix ~layout_seeds ~variants plan cand with
              | Ok r -> (
                  match eta2_of r with
                  | Some d' -> d'.Explain.layout_eta2 >= threshold
                  | None -> false)
              | Error _ | (exception _) -> false
            in
            let shrunk, shrink_steps =
              Fuzzer.shrink ~budget:shrink_budget ~pred p
            in
            let repro_instrs = Fuzzer.program_instrs shrunk in
            let name = repro_name index in
            let header =
              String.concat "\n"
                [
                  "# szc layout sweep reproducer";
                  Printf.sprintf "# fuzz_seed=%Ld index=%d case_seed=%Ld"
                    fuzz_seed index cs;
                  Printf.sprintf
                    "# layout_eta2=%.6f (threshold %.6f, K=%d seeds, W=%d \
                     variants)"
                    d.Explain.layout_eta2 threshold layout_seeds variants;
                  Printf.sprintf "# plan: %s" (F.describe plan);
                  Printf.sprintf "# instructions=%d (shrunk from %d in %d steps)"
                    repro_instrs instrs shrink_steps;
                  "";
                ]
            in
            ( {
                base with
                Sweeplog.repro = name;
                repro_instrs;
                shrink_steps;
              },
              Some (name, header ^ Text.to_string shrunk) )
          end)

let summarize ~threshold cases =
  let z =
    {
      total = 0;
      measured = 0;
      trapped = 0;
      crashed = 0;
      hung = 0;
      max_eta2 = 0.;
      offenders = [];
      reproducers = [];
    }
  in
  let s =
    List.fold_left
      (fun s (c : Sweeplog.case) ->
        let s = { s with total = s.total + 1 } in
        match c.Sweeplog.verdict with
        | Sweeplog.Measured ->
            let s =
              {
                s with
                measured = s.measured + 1;
                max_eta2 = Float.max s.max_eta2 c.Sweeplog.eta2;
              }
            in
            let s =
              if c.Sweeplog.eta2 >= threshold then
                { s with offenders = c :: s.offenders }
              else s
            in
            if c.Sweeplog.repro <> "" then
              { s with reproducers = c.Sweeplog.repro :: s.reproducers }
            else s
        | Sweeplog.Trapped -> { s with trapped = s.trapped + 1 }
        | Sweeplog.Crashed -> { s with crashed = s.crashed + 1 }
        | Sweeplog.Hung -> { s with hung = s.hung + 1 })
      z cases
  in
  {
    s with
    offenders =
      List.stable_sort
        (fun (a : Sweeplog.case) (b : Sweeplog.case) ->
          let c = compare b.Sweeplog.eta2 a.Sweeplog.eta2 in
          if c <> 0 then c else compare a.Sweeplog.index b.Sweeplog.index)
        (List.rev s.offenders);
    reproducers = List.rev s.reproducers;
  }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let run_campaign cfg =
  let ( let* ) = Result.bind in
  let* () =
    if cfg.layout_seeds < 2 then Error "sweep: need at least 2 layout seeds"
    else if cfg.variants < 2 then Error "sweep: need at least 2 variants"
    else Ok ()
  in
  let* () =
    match mkdir_p cfg.out_dir with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot create %s: %s" cfg.out_dir
             (Unix.error_message e))
  in
  let meta =
    {
      Sweeplog.version = 1;
      fuzz_seed = cfg.fuzz_seed;
      count = cfg.count;
      layout_seeds = cfg.layout_seeds;
      variants = cfg.variants;
      threshold = cfg.threshold;
      shrink_budget = cfg.shrink_budget;
    }
  in
  let path = Filename.concat cfg.out_dir ledger_name in
  let* lg, existing =
    if cfg.resume then Sweeplog.resume ~path meta
    else Result.map (fun t -> (t, [])) (Sweeplog.create ~path meta)
  in
  let start = List.length existing in
  let remaining = max 0 (cfg.count - start) in
  if cfg.resume && start > 0 then
    cfg.log
      (Printf.sprintf "resuming: %d/%d cases already in the ledger" start
         cfg.count);
  let eval index =
    evaluate ~layout_seeds:cfg.layout_seeds ~variants:cfg.variants
      ~threshold:cfg.threshold ~shrink_budget:cfg.shrink_budget
      ~fuzz_seed:cfg.fuzz_seed ~index ()
  in
  let new_cases = ref [] in
  if remaining > 0 then begin
    (* Completion-order results buffered and flushed in index order —
       ledger bytes never depend on --jobs, a SIGKILL always leaves a
       contiguous resumable prefix, and a reproducer file is written
       before the record that references it. *)
    let pending = Array.make remaining None in
    let next = ref 0 in
    let flush () =
      while
        !next < remaining
        && match pending.(!next) with Some _ -> true | None -> false
      do
        (match pending.(!next) with
        | None -> assert false
        | Some ((case : Sweeplog.case), repro) ->
            (match repro with
            | Some (name, text) ->
                Stz_store.Artifact.write_with_sum
                  (Filename.concat cfg.out_dir name)
                  text
            | None -> ());
            Sweeplog.append lg case;
            new_cases := case :: !new_cases;
            (match case.Sweeplog.verdict with
            | Sweeplog.Measured when case.Sweeplog.repro <> "" ->
                cfg.log
                  (Printf.sprintf
                     "OFFENDER case %d: eta2=%.3f %s %d<->%d -> %s [%d \
                      instrs, %d shrink steps]"
                     case.Sweeplog.index case.Sweeplog.eta2
                     case.Sweeplog.structure case.Sweeplog.victim
                     case.Sweeplog.evictor case.Sweeplog.repro
                     case.Sweeplog.repro_instrs case.Sweeplog.shrink_steps)
            | Sweeplog.Crashed | Sweeplog.Hung ->
                cfg.log
                  (Printf.sprintf "censored case %d: %s" case.Sweeplog.index
                     case.Sweeplog.detail)
            | _ -> ());
            if
              (case.Sweeplog.index + 1) mod 20 = 0
              || case.Sweeplog.index + 1 = cfg.count
            then
              cfg.log
                (Printf.sprintf "swept %d/%d" (case.Sweeplog.index + 1)
                   cfg.count));
        incr next
      done
    in
    let on_result i r =
      let index = start + i in
      let v =
        match r with
        | Parallel.Value v -> v
        | Parallel.Lost ->
            let plan = F.plan ~fuzz_seed:cfg.fuzz_seed ~index in
            ( blank_case index plan.F.case_seed Sweeplog.Crashed
                "worker died mid-case",
              None )
        | Parallel.Hung ->
            let plan = F.plan ~fuzz_seed:cfg.fuzz_seed ~index in
            ( blank_case index plan.F.case_seed Sweeplog.Hung
                "watchdog killed a hung worker",
              None )
      in
      pending.(i) <- Some v;
      flush ()
    in
    ignore
      (Parallel.map ~on_result ?watchdog:cfg.watchdog ~jobs:cfg.jobs
         ~f:(fun i -> eval (start + i))
         remaining);
    flush ()
  end;
  Sweeplog.close lg;
  Ok (summarize ~threshold:cfg.threshold (existing @ List.rev !new_cases))
