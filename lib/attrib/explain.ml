module Hierarchy = Stz_machine.Hierarchy
module Cost = Stz_machine.Cost
module Anova = Stz_stats.Anova
module Ir = Stz_vm.Ir
module Splitmix = Stz_prng.Splitmix
module Event = Stz_telemetry.Event
module Json = Stz_telemetry.Json
module Export = Stz_telemetry.Export
module Runtime = Stabilizer.Runtime
module Parallel = Stabilizer.Parallel
module Config = Stabilizer.Config

type decomposition = {
  anova : Anova.result;
  layout_eta2 : float;
  partial_eta2 : float;
  workload_share : float;
  residual_share : float;
}

type report = {
  func_names : string array;
  seeds : int64 array;
  variants : int list array;
  cycles : int array array;
  rows_used : int;
  decomposition : decomposition option;
  note : string;
  merged : Hierarchy.attrib_snapshot option;
  pairs : Conflict.pair list;
}

(* Same derivation shape as Sample.seeds: one generator split per
   treatment, so seed k is stable under any K' >= k. *)
let layout_seeds ~base_seed k =
  let g = Splitmix.create base_seed in
  Array.init k (fun _ -> Splitmix.split g)

(* The ANOVA's ss fields are always finite; the ratios are guarded here
   rather than trusting f/p (which go NaN on a constant matrix).

   [layout_eta2] is the *classic* η² — SS_layout / SS_total — not the
   partial variant: in a noiseless simulator the error stratum is pure
   layout×workload interaction, which for near-multiplicative cycle
   structure makes SS_t/(SS_t+SS_e) saturate near 1 whenever layout has
   any effect at all, however tiny. The classic ratio keeps the
   workload stratum in the denominator and so actually discriminates
   layout-dominated programs from layout-indifferent ones. *)
let decompose rows =
  let r = Anova.within_subjects rows in
  let ss_total = r.Anova.ss_treatment +. r.Anova.ss_subjects +. r.Anova.ss_error in
  let share x = if ss_total <= 0. then 0. else x /. ss_total in
  let partial_denom = r.Anova.ss_treatment +. r.Anova.ss_error in
  {
    anova = r;
    layout_eta2 = share r.Anova.ss_treatment;
    partial_eta2 =
      (if partial_denom <= 0. then 0.
       else r.Anova.ss_treatment /. partial_denom);
    workload_share = share r.Anova.ss_subjects;
    residual_share = share r.Anova.ss_error;
  }

let run ?(jobs = 1) ?limits ?(config = Config.one_time) ?(cost = Cost.default)
    ~base_seed ~seeds:k ~variants (p : Ir.program) =
  if k < 2 then Error "explain: need at least 2 layout seeds"
  else
    let variants = Array.of_list variants in
    let w = Array.length variants in
    if w < 2 then Error "explain: need at least 2 workload variants"
    else begin
      let funcs = Array.length p.Ir.funcs in
      let seeds = layout_seeds ~base_seed k in
      (* Worker body: one (variant, seed) cell on a fresh armed
         machine; the factory capture gets the snapshot out without
         widening Runtime.result. Traps censor the cell. *)
      let eval i =
        let vi = i / k and ki = i mod k in
        let captured = ref None in
        let machine_factory () =
          let m = Hierarchy.create () in
          Hierarchy.arm_attrib m ~funcs;
          captured := Some m;
          m
        in
        match
          Runtime.run ?limits ~machine_factory ~config ~seed:seeds.(ki) p
            ~args:variants.(vi)
        with
        | r ->
            Some
              ( r.Runtime.cycles,
                Option.bind !captured Hierarchy.attrib_snapshot )
        | exception Runtime.Trap _ -> None
      in
      let results = Parallel.map ~jobs ~f:eval (w * k) in
      let cycles = Array.make_matrix w k (-1) in
      let merged = ref None in
      Array.iteri
        (fun i r ->
          match r with
          | Parallel.Value (Some (c, snap)) ->
              cycles.(i / k).(i mod k) <- c;
              (match snap with
              | Some s ->
                  merged :=
                    Some
                      (match !merged with
                      | None -> s
                      | Some acc -> Conflict.merge acc s)
              | None -> ())
          | Parallel.Value None | Parallel.Lost | Parallel.Hung -> ())
        results;
      let complete_rows =
        Array.to_list cycles
        |> List.filter (fun row -> Array.for_all (fun c -> c >= 0) row)
      in
      let rows_used = List.length complete_rows in
      let decomposition, note =
        if rows_used < 2 then
          ( None,
            Printf.sprintf
              "only %d of %d workload variants completed every layout seed"
              rows_used w )
        else
          ( Some
              (decompose
                 (Array.of_list
                    (List.map (Array.map float_of_int) complete_rows))),
            "" )
      in
      Ok
        {
          func_names = Array.map (fun f -> f.Ir.fname) p.Ir.funcs;
          seeds;
          variants;
          cycles;
          rows_used;
          decomposition;
          note;
          merged = !merged;
          pairs =
            (match !merged with
            | None -> []
            | Some s -> Conflict.pairs ~cost s);
        }
    end

let fname report fid =
  if fid >= 0 && fid < Array.length report.func_names then
    report.func_names.(fid)
  else Printf.sprintf "f%d" fid

let decomposition_lines report =
  match report.decomposition with
  | None -> [ Printf.sprintf "no decomposition: %s" report.note ]
  | Some d ->
      [
        Printf.sprintf
          "layout_eta2 %.6f partial_eta2 %.6f workload_share %.6f \
           residual_share %.6f"
          d.layout_eta2 d.partial_eta2 d.workload_share d.residual_share;
        Printf.sprintf "layout anova %s" (Anova.to_string d.anova);
        Printf.sprintf "seeds %d variants %d rows_used %d"
          (Array.length report.seeds)
          (Array.length report.variants)
          report.rows_used;
      ]

let csv report =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "rank,structure,f1,f1_name,f2,f2_name,events,est_cycles\n";
  List.iteri
    (fun i (p : Conflict.pair) ->
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%d,%s,%d,%s,%d,%d\n" (i + 1)
           (Conflict.structure_name p.Conflict.structure)
           p.Conflict.f1
           (fname report p.Conflict.f1)
           p.Conflict.f2
           (fname report p.Conflict.f2)
           p.Conflict.events p.Conflict.est_cycles))
    report.pairs;
  List.iter
    (fun line -> Buffer.add_string b ("# " ^ line ^ "\n"))
    (decomposition_lines report);
  Buffer.contents b

let trace_string report =
  let groups =
    Array.to_list
      (Array.mapi
         (fun vi row ->
           let events = ref [] in
           Array.iteri
             (fun ki c ->
               if c >= 0 then
                 events :=
                   Event.Span
                     {
                       name = Printf.sprintf "seed %Ld" report.seeds.(ki);
                       cat = "explain";
                       lane = ki;
                       ts = 0;
                       dur = c;
                       args =
                         [
                           ("variant", Json.Int vi);
                           ("cycles", Json.Int c);
                           ( "seed",
                             Json.String (Int64.to_string report.seeds.(ki)) );
                         ];
                     }
                   :: !events)
             row;
           ( Printf.sprintf "variant %d [%s]" vi
               (String.concat " "
                  (List.map string_of_int report.variants.(vi))),
             List.rev !events ))
         report.cycles)
  in
  Export.chrome_groups_string groups

let to_string report =
  let b = Buffer.create 1024 in
  List.iter
    (fun line -> Buffer.add_string b (line ^ "\n"))
    (decomposition_lines report);
  if report.pairs = [] then
    Buffer.add_string b "no cross-function conflicts recorded\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "%-4s %-9s %-24s %12s %12s\n" "#" "structure"
         "conflicting pair" "events" "est_cycles");
    List.iteri
      (fun i (p : Conflict.pair) ->
        Buffer.add_string b
          (Printf.sprintf "%-4d %-9s %-24s %12d %12d\n" (i + 1)
             (Conflict.structure_name p.Conflict.structure)
             (fname report p.Conflict.f1 ^ " <-> " ^ fname report p.Conflict.f2)
             p.Conflict.events p.Conflict.est_cycles))
      report.pairs
  end;
  Buffer.contents b
