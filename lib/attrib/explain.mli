(** The layout-bias attribution profiler behind [szc explain]: run one
    program under K layout seeds × W workload variants through the
    {!Stabilizer.Parallel} pool on attribution-armed machines, then

    {ul
    {- decompose cycle variance with
       {!Stz_stats.Anova.within_subjects} — workload variants are the
       subjects, layout seeds the treatments — into layout / workload /
       residual components with η² effect sizes, and}
    {- accumulate every run's conflict snapshot into one ranked
       {!Conflict.pair} table.}}

    The whole report is a pure function of [(program, base_seed,
    seeds, variants, config)] — independent of [jobs] — so its CSV and
    trace exports are byte-reproducible. *)

(** The variance decomposition. [layout_eta2] is the {e classic} η² —
    SS_layout / SS_total, the fraction of all cycle variance explained
    by layout alone — because in a noiseless simulator the partial
    variant saturates near 1 for any nonzero layout effect (the error
    stratum is pure layout×workload interaction). [layout_eta2 +
    workload_share + residual_share = 1] (all 0 when the matrix is
    constant); [partial_eta2] is reported alongside for comparison with
    the paper's convention. *)
type decomposition = {
  anova : Stz_stats.Anova.result;
  layout_eta2 : float;  (** classic η²: SS_layout / SS_total *)
  partial_eta2 : float;  (** SS_layout / (SS_layout + SS_error) *)
  workload_share : float;  (** SS_subjects / SS_total *)
  residual_share : float;  (** SS_error / SS_total *)
}

type report = {
  func_names : string array;
  seeds : int64 array;  (** the K layout seeds (treatments) *)
  variants : int list array;  (** the W argument vectors (subjects) *)
  cycles : int array array;  (** [variants x seeds]; -1 = cell failed *)
  rows_used : int;  (** complete variant rows entering the ANOVA *)
  decomposition : decomposition option;
  note : string;  (** why [decomposition] is [None], or [""] *)
  merged : Stz_machine.Hierarchy.attrib_snapshot option;
      (** conflict map summed over every completed cell *)
  pairs : Conflict.pair list;  (** ranked worst-first *)
}

(** Run the matrix. [seeds >= 2] and at least 2 [variants] are
    required; layout seeds are split deterministically from
    [base_seed]. Cells that trap are censored: their variant row is
    excluded from the ANOVA (but surviving snapshots still feed the
    conflict map). [config] defaults to {!Stabilizer.Config.one_time} —
    each seed is one frozen random layout, the paper's layout-sampling
    regime. *)
val run :
  ?jobs:int ->
  ?limits:Stz_vm.Interp.limits ->
  ?config:Stabilizer.Config.t ->
  ?cost:Stz_machine.Cost.t ->
  base_seed:int64 ->
  seeds:int ->
  variants:int list list ->
  Stz_vm.Ir.program ->
  (report, string) result

(** Conflict table as CSV: one row per ranked pair, then a ['#']
    comment footer with the decomposition (matching the campaign-CSV
    footer convention). *)
val csv : report -> string

(** Chrome trace_event export: one process group per workload variant,
    one lane per layout seed, each completed cell a complete span of
    its cycle count — layout bias made visible as ragged span ends. *)
val trace_string : report -> string

(** Human-readable ranked table plus decomposition summary. *)
val to_string : report -> string
